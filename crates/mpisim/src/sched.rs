//! The batched cooperative rank scheduler.
//!
//! One OS thread per rank does not survive contact with paper-scale worlds:
//! at 512 ranks the host drowns in runnable threads and timed polling
//! wakeups long before the simulation itself becomes expensive. This
//! module bounds *execution*, not existence: every rank still owns a
//! thread (its stack is the rank's continuation), but only `workers` ranks
//! may be **running** at any instant. All other rank threads are parked —
//! either blocked on an event (a mailbox deposit, a collective completion,
//! a checkpoint-control wake) having released their run slot, or queued
//! FIFO for a slot.
//!
//! With execution bounded, the per-rank *footprint* is the thread stack —
//! the only resource a parked continuation still holds. Rank stacks
//! default to [`crate::world::DEFAULT_RANK_STACK`] (128 KiB, sized to
//! measured rank-body depth with 2× headroom) rather than the platform's
//! 1 MiB-plus, which is what lets 4096 parked continuations fit on a
//! small host; and every wait path shares the per-world [`WakeupStats`]
//! block, so the *absence* of timed wakeups — the scheduler's other
//! scaling contract — is an asserted property rather than a hope.
//!
//! The contract with the rest of the system is small:
//!
//! * [`Scheduler::attach`] / [`Scheduler::detach`] bracket a rank body:
//!   attach acquires the rank's first run slot, detach releases whatever
//!   the rank still holds (idempotent, panic-path safe).
//! * [`Scheduler::blocking`] brackets every potentially-blocking wait (the
//!   mailbox receive wait, the collective rendezvous park, the checkpoint
//!   layer's drain-gate / trivial-barrier / quiesce parks): the slot is
//!   released for the duration of the closure and re-acquired FIFO
//!   afterwards, so a world of 512 ranks multiplexes onto ~`num_cpus`
//!   active workers and a *blocked* rank costs nothing.
//! * [`Scheduler::yield_now`] is the cooperative yield-point used by
//!   polling loops (`MPI_Test` loops, `park_briefly`): if any rank is
//!   queued for a slot, the caller hands its slot to the queue head and
//!   requeues itself at the tail — strict round-robin, so every runnable
//!   rank makes progress and no poll loop can starve the world.
//!
//! Nothing here touches virtual time: the scheduler changes only which
//! host thread runs when, never what the simulation computes. Wall-clock
//! interleaving was never deterministic; virtual-clock accounting, message
//! matching order per channel, and collective results are exactly as
//! before — the deterministic-replay contract (`CallCounters` + `SEQ[]`
//! equality locating a restore cut) is preserved by construction.
//!
//! A `Scheduler` deliberately outlives any single [`crate::World`]: the
//! checkpoint engine replaces the lower half at restart while the rank
//! threads (and their slots) live on, so restarted generations are built
//! with [`crate::World::with_epoch_attached`] onto the same scheduler.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Backstop re-check interval for slot waits. Grants are targeted (a
/// waiter can never steal another rank's grant) and notified under the
/// state mutex, so this only defends against a pathological lost wakeup;
/// it is not a scheduling quantum. It is deliberately long: at 4096 ranks
/// a whole world's worth of waiters can be queued behind two run slots
/// for hundreds of milliseconds, and a short re-check would turn every
/// queued rank into a timed poller — the class of hidden cost this
/// scheduler exists to remove. Expiries are counted in [`WakeupStats`]:
/// at tier-1 scales a healthy world never pays one; at extreme
/// multiplexing ratios (4096 ranks on 2 workers) a FIFO queue wait can
/// legitimately outlast even this window, so the counter reads as the
/// residual timed-wakeup load rather than strictly zero.
const GRANT_RECHECK: Duration = Duration::from_secs(1);

/// Counters for the wall-clock wait paths shared by one world's ranks.
///
/// Every unbounded park in the system (slot grants here, mailbox receive
/// waits, the checkpoint layer's control parks) is event-driven with a
/// long *backstop* timeout for defense in depth. A regression back to
/// timed polling is invisible in any functional test — results stay
/// correct, only host sys-time blows up (the pre-scheduler 200 µs
/// re-checks throttled 256-rank captures ~30×). So the backstops are made
/// observable: every wait that expires its backstop without the awaited
/// event having fired bumps [`WakeupStats::backstop_expiries`], and a
/// tier-1 test asserts the count stays at ~0 across a checkpointed run.
#[derive(Debug, Default)]
pub struct WakeupStats {
    /// Wakeups caused by a backstop timeout rather than the awaited event.
    backstop_expiries: AtomicU64,
}

impl WakeupStats {
    /// Records one backstop-expiry wakeup.
    #[inline]
    pub fn record_backstop_expiry(&self) {
        self.backstop_expiries.fetch_add(1, Ordering::Relaxed);
    }

    /// Total backstop-expiry wakeups since construction.
    #[inline]
    pub fn backstop_expiries(&self) -> u64 {
        self.backstop_expiries.load(Ordering::Relaxed)
    }
}

/// Where one rank currently stands with the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Not under scheduler management (never attached, finished, or
    /// voluntarily slotless inside a [`Scheduler::blocking`] section).
    Detached,
    /// Waiting in the FIFO queue for a run slot.
    Queued,
    /// A slot has been assigned to this rank; it has not woken yet.
    Granted,
    /// Holding a run slot and executing.
    Running,
}

struct SchedState {
    /// Unassigned run slots.
    free: usize,
    /// Ranks waiting for a slot, FIFO. Invariant: non-empty only while
    /// `free == 0` (slots hand off directly to the queue head).
    queue: VecDeque<usize>,
    /// Per-rank status.
    status: Vec<Status>,
}

/// Bounded run-slot pool multiplexing `n_ranks` rank threads onto
/// `workers` concurrently-running workers. See the module docs.
pub struct Scheduler {
    workers: usize,
    state: Mutex<SchedState>,
    /// Per-rank grant signal (all share the state mutex).
    cvs: Vec<Condvar>,
    /// Shared backstop-expiry accounting for this world's wait paths.
    stats: Arc<WakeupStats>,
}

impl Scheduler {
    /// A scheduler for `n_ranks` ranks and `workers` run slots.
    ///
    /// # Panics
    /// Panics if either is zero.
    pub fn new(n_ranks: usize, workers: usize) -> Arc<Scheduler> {
        assert!(n_ranks > 0, "scheduler needs at least one rank");
        assert!(workers > 0, "scheduler needs at least one worker slot");
        Arc::new(Scheduler {
            workers,
            state: Mutex::new(SchedState {
                free: workers,
                queue: VecDeque::new(),
                status: vec![Status::Detached; n_ranks],
            }),
            cvs: (0..n_ranks).map(|_| Condvar::new()).collect(),
            stats: Arc::new(WakeupStats::default()),
        })
    }

    /// The shared wakeup-statistics block. The scheduler outlives every
    /// lower-half generation, so this is the natural per-world home for
    /// the backstop-expiry counter; the mailbox and checkpoint-control
    /// wait paths share the same block.
    #[inline]
    pub fn stats(&self) -> &Arc<WakeupStats> {
        &self.stats
    }

    /// The default worker count for this host: every available core, but
    /// at least 2 so one slot-holding wall-clock sleep can never serialize
    /// the whole world behind it.
    pub fn default_workers() -> usize {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4)
            .max(2)
    }

    /// Number of run slots.
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of ranks this scheduler manages.
    pub fn n_ranks(&self) -> usize {
        self.cvs.len()
    }

    /// Registers `rank` and acquires its first run slot (FIFO). Call at
    /// the top of the rank's thread body.
    pub fn attach(&self, rank: usize) {
        let mut st = self.state.lock();
        assert_eq!(
            st.status[rank],
            Status::Detached,
            "rank {rank} attached twice"
        );
        self.acquire_locked(&mut st, rank);
    }

    /// Releases whatever `rank` holds and unregisters it. Idempotent; safe
    /// to call from a panic-cleanup path regardless of where the rank
    /// stood.
    pub fn detach(&self, rank: usize) {
        let mut st = self.state.lock();
        match st.status[rank] {
            Status::Running | Status::Granted => self.release_locked(&mut st),
            Status::Queued => st.queue.retain(|&r| r != rank),
            Status::Detached => {}
        }
        st.status[rank] = Status::Detached;
    }

    /// Cooperative yield-point for polling loops. If any rank is queued
    /// for a slot, hands this rank's slot to the queue head, requeues the
    /// caller at the tail, and blocks until re-granted — strict
    /// round-robin. Returns `true` if a rotation happened, `false` on the
    /// fast path (no contention, or the caller is not slot-managed).
    pub fn yield_now(&self, rank: usize) -> bool {
        let mut st = self.state.lock();
        if st.status[rank] != Status::Running || st.queue.is_empty() {
            return false;
        }
        self.release_locked(&mut st);
        self.acquire_locked(&mut st, rank);
        true
    }

    /// Runs `f` — which may block on any condition variable or sleep —
    /// with this rank's run slot released, then re-acquires the slot
    /// (FIFO) before returning. The bracket nests harmlessly: an inner
    /// `blocking` on an already-slotless rank just runs its closure. Ranks
    /// never attached run `f` directly.
    pub fn blocking<T>(&self, rank: usize, f: impl FnOnce() -> T) -> T {
        let held = {
            let mut st = self.state.lock();
            if st.status[rank] == Status::Running {
                self.release_locked(&mut st);
                st.status[rank] = Status::Detached;
                true
            } else {
                false
            }
        };
        let out = f();
        if held {
            let mut st = self.state.lock();
            self.acquire_locked(&mut st, rank);
        }
        out
    }

    /// Borrows every currently-free run slot for a bounded out-of-band
    /// task — the checkpoint coordinator's parallel capture/serialize
    /// bracket.
    ///
    /// At a checkpoint quiesce every rank is parked slotless inside a
    /// [`Scheduler::blocking`] section, so the whole pool is idle. The
    /// coordinator claims it, runs `f` with the claimed slot count (at
    /// least 1: the coordinator's own thread always counts as a worker),
    /// and on return the claimed slots flow back through the normal FIFO
    /// hand-off, so ranks that queued while the pool was borrowed wake in
    /// order.
    pub fn borrow_workers<T>(&self, f: impl FnOnce(usize) -> T) -> T {
        let claimed = {
            let mut st = self.state.lock();
            std::mem::take(&mut st.free)
        };
        let out = f(claimed.max(1));
        if claimed > 0 {
            let mut st = self.state.lock();
            for _ in 0..claimed {
                self.release_locked(&mut st);
            }
        }
        out
    }

    /// Assigns a freed slot: directly to the queue head if anyone waits,
    /// back to the free pool otherwise.
    fn release_locked(&self, st: &mut SchedState) {
        if let Some(next) = st.queue.pop_front() {
            st.status[next] = Status::Granted;
            self.cvs[next].notify_all();
        } else {
            st.free += 1;
        }
    }

    /// Acquires a slot for `rank`, queueing FIFO behind earlier waiters.
    fn acquire_locked(&self, st: &mut parking_lot::MutexGuard<'_, SchedState>, rank: usize) {
        if st.free > 0 && st.queue.is_empty() {
            st.free -= 1;
            st.status[rank] = Status::Running;
            return;
        }
        st.status[rank] = Status::Queued;
        st.queue.push_back(rank);
        while st.status[rank] != Status::Granted {
            let timed_out = self.cvs[rank].wait_for(st, GRANT_RECHECK).timed_out();
            if timed_out && st.status[rank] != Status::Granted {
                // Grants notify under the state mutex, so this can only be
                // a genuinely unproductive wakeup — count it.
                self.stats.record_backstop_expiry();
            }
        }
        st.status[rank] = Status::Running;
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("Scheduler")
            .field("workers", &self.workers)
            .field("n_ranks", &self.cvs.len())
            .field("free", &st.free)
            .field("queued", &st.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn uncontended_fast_paths() {
        let s = Scheduler::new(4, 2);
        s.attach(0);
        assert!(!s.yield_now(0), "no contention: yield is a no-op");
        let v = s.blocking(0, || 42);
        assert_eq!(v, 42);
        s.detach(0);
        s.detach(0); // idempotent
    }

    #[test]
    fn unattached_rank_is_unmanaged() {
        let s = Scheduler::new(2, 1);
        // Never attached: blocking runs the closure, yield is a no-op.
        assert_eq!(s.blocking(1, || 7), 7);
        assert!(!s.yield_now(1));
    }

    #[test]
    fn slots_bound_concurrency() {
        // 4 ranks, 1 slot: the concurrently-running count must never
        // exceed 1 even though all 4 threads are alive.
        let s = Scheduler::new(4, 1);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for rank in 0..4 {
            let s = Arc::clone(&s);
            let running = Arc::clone(&running);
            let peak = Arc::clone(&peak);
            handles.push(std::thread::spawn(move || {
                s.attach(rank);
                for _ in 0..50 {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(Duration::from_micros(50));
                    running.fetch_sub(1, Ordering::SeqCst);
                    s.yield_now(rank);
                }
                s.detach(rank);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "slot bound violated");
    }

    #[test]
    fn blocking_releases_the_slot() {
        // 2 ranks, 1 slot: rank 0 blocks waiting for rank 1's signal;
        // rank 1 can only run if rank 0's blocking released the slot.
        let s = Scheduler::new(2, 1);
        let flag = Arc::new((Mutex::new(false), Condvar::new()));
        let s0 = Arc::clone(&s);
        let f0 = Arc::clone(&flag);
        let t0 = std::thread::spawn(move || {
            s0.attach(0);
            s0.blocking(0, || {
                let (m, cv) = &*f0;
                let mut done = m.lock();
                while !*done {
                    cv.wait_for(&mut done, Duration::from_millis(50));
                }
            });
            s0.detach(0);
        });
        std::thread::sleep(Duration::from_millis(20));
        let s1 = Arc::clone(&s);
        let f1 = Arc::clone(&flag);
        let t1 = std::thread::spawn(move || {
            s1.attach(1); // must succeed: slot was released by rank 0
            *f1.0.lock() = true;
            f1.1.notify_all();
            s1.detach(1);
        });
        t1.join().unwrap();
        t0.join().unwrap();
    }

    #[test]
    fn fifo_rotation_is_fair() {
        // 3 ranks, 1 slot, every rank yields in a loop: each must complete
        // its fixed iteration budget (no starvation).
        let s = Scheduler::new(3, 1);
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for rank in 0..3 {
            let s = Arc::clone(&s);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || {
                s.attach(rank);
                for _ in 0..200 {
                    s.yield_now(rank);
                }
                done.fetch_add(1, Ordering::SeqCst);
                s.detach(rank);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn nested_blocking_is_harmless() {
        let s = Scheduler::new(1, 1);
        s.attach(0);
        let v = s.blocking(0, || s.blocking(0, || 5));
        assert_eq!(v, 5);
        // Slot was re-acquired exactly once.
        assert!(!s.yield_now(0));
        s.detach(0);
    }

    #[test]
    fn borrow_workers_claims_idle_pool_and_returns_it() {
        let s = Scheduler::new(4, 2);
        // Pool fully idle (mirrors a checkpoint quiesce): both slots lent.
        s.borrow_workers(|k| assert_eq!(k, 2));
        // Slots came back: two ranks attach without blocking.
        s.attach(0);
        s.attach(1);
        // One slot held by each rank, none free: the borrow still runs
        // with at least the caller's own thread.
        s.borrow_workers(|k| assert_eq!(k, 1));
        s.detach(0);
        s.detach(1);
    }

    #[test]
    fn ranks_queued_during_borrow_wake_on_return() {
        let s = Scheduler::new(2, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let s0 = Arc::clone(&s);
        let g0 = Arc::clone(&gate);
        let t = std::thread::spawn(move || {
            // Wait until the borrow is in progress, then try to attach:
            // the slot is lent out, so this queues until the return path
            // releases it.
            let (m, cv) = &*g0;
            let mut started = m.lock();
            while !*started {
                cv.wait(&mut started);
            }
            drop(started);
            s0.attach(0);
            s0.detach(0);
        });
        s.borrow_workers(|k| {
            assert_eq!(k, 1);
            *gate.0.lock() = true;
            gate.1.notify_all();
            // Give the attacher time to queue behind the borrowed slot.
            std::thread::sleep(Duration::from_millis(20));
        });
        t.join().unwrap();
    }

    #[test]
    fn detach_of_queued_rank_leaves_queue_clean() {
        let s = Scheduler::new(3, 1);
        s.attach(0);
        let s1 = Arc::clone(&s);
        let t = std::thread::spawn(move || {
            s1.attach(1); // queues behind rank 0
            s1.detach(1);
        });
        std::thread::sleep(Duration::from_millis(10));
        s.detach(0); // hands the slot to rank 1
        t.join().unwrap();
        // Slot must be back in the pool: a fresh rank acquires instantly.
        s.attach(2);
        s.detach(2);
    }
}
