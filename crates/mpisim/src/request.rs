//! Request objects for non-blocking operations (`MPI_Request`).
//!
//! A [`Request`] is owned by the rank that initiated the operation and is
//! completed through [`crate::Ctx::test`] / [`crate::Ctx::wait`] (which need
//! the rank's clock and mailbox). A completed or never-initialized request
//! is `MPI_REQUEST_NULL`: testing it returns an immediate empty completion,
//! as the MPI standard specifies.

use crate::collective::CollInstance;
use crate::comm::Comm;
use crate::msg::{InFlightMsg, Status};
use crate::types::{SrcSel, TagSel};
use bytes::Bytes;
use netmodel::VTime;
use std::sync::Arc;

/// What a completed operation yields.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Receive completions carry the matched message's status.
    pub status: Option<Status>,
    /// Payload: received bytes, or this rank's collective output. Empty for
    /// sends and barriers.
    pub data: Bytes,
}

impl Completion {
    /// An empty completion (sends, barrier, null requests).
    pub fn empty() -> Self {
        Completion {
            status: None,
            data: Bytes::new(),
        }
    }
}

/// The kind-specific state of an active request.
#[derive(Debug)]
pub(crate) enum ReqKind {
    /// Eager send: locally complete at `complete_at`.
    Send {
        /// Local completion time (injection done).
        complete_at: VTime,
    },
    /// Posted receive, not yet matched.
    Recv {
        /// Communicator to match on.
        comm: Comm,
        /// Source selector.
        src: SrcSel,
        /// Tag selector.
        tag: TagSel,
        /// Matched message, once found (held until completion time).
        matched: Option<InFlightMsg>,
    },
    /// Non-blocking collective participation.
    Coll {
        /// The shared instance.
        inst: Arc<CollInstance>,
        /// This rank's group rank in the instance.
        group_rank: usize,
    },
}

/// A non-blocking operation handle. `Request::null()` is `MPI_REQUEST_NULL`.
#[derive(Debug)]
pub struct Request {
    pub(crate) kind: Option<ReqKind>,
}

impl Request {
    /// `MPI_REQUEST_NULL`.
    pub fn null() -> Self {
        Request { kind: None }
    }

    /// Whether this is `MPI_REQUEST_NULL` (completed or never active).
    pub fn is_null(&self) -> bool {
        self.kind.is_none()
    }

    pub(crate) fn send(complete_at: VTime) -> Self {
        Request {
            kind: Some(ReqKind::Send { complete_at }),
        }
    }

    pub(crate) fn recv(comm: Comm, src: SrcSel, tag: TagSel) -> Self {
        Request {
            kind: Some(ReqKind::Recv {
                comm,
                src,
                tag,
                matched: None,
            }),
        }
    }

    pub(crate) fn coll(inst: Arc<CollInstance>, group_rank: usize) -> Self {
        Request {
            kind: Some(ReqKind::Coll { inst, group_rank }),
        }
    }

    /// Describes a pending receive so the checkpoint engine can record it
    /// in the image and re-post it at restart: `(comm, src, tag)`.
    /// Returns `None` for null, send, or collective requests.
    pub fn recv_descriptor(&self) -> Option<(Comm, SrcSel, TagSel)> {
        match &self.kind {
            Some(ReqKind::Recv {
                comm,
                src,
                tag,
                matched: None,
            }) => Some((comm.clone(), *src, *tag)),
            _ => None,
        }
    }

    /// **Checkpoint hook.** Pulls out a message this receive request has
    /// already matched (taken from the mailbox) but not yet completed,
    /// reverting the request to its unmatched state. The checkpoint engine
    /// re-deposits the message so the image's in-flight drain sees it;
    /// without this, a matched-but-unarrived message would be lost.
    /// Returns `None` for non-receive or unmatched requests.
    pub fn unmatch(&mut self) -> Option<InFlightMsg> {
        match &mut self.kind {
            Some(ReqKind::Recv { matched, .. }) => matched.take(),
            _ => None,
        }
    }

    /// Whether this request is a non-blocking collective.
    pub fn is_collective(&self) -> bool {
        matches!(self.kind, Some(ReqKind::Coll { .. }))
    }
}

impl Default for Request {
    fn default() -> Self {
        Request::null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_request() {
        let r = Request::null();
        assert!(r.is_null());
        assert!(r.recv_descriptor().is_none());
        assert!(!r.is_collective());
    }

    #[test]
    fn send_request_states() {
        let r = Request::send(VTime::from_micros(1.0));
        assert!(!r.is_null());
        assert!(r.recv_descriptor().is_none());
    }
}
