//! Reduction operators (`MPI_SUM`, `MPI_MAX`, …) over typed byte payloads.

use crate::dtype::DType;

/// A reduction operator, applied element-wise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// `MPI_SUM`.
    Sum,
    /// `MPI_PROD`.
    Prod,
    /// `MPI_MAX`.
    Max,
    /// `MPI_MIN`.
    Min,
}

impl ReduceOp {
    /// Combines `rhs` into `acc` element-wise: `acc[i] = op(acc[i], rhs[i])`.
    ///
    /// Like MPI's reduction guarantee, the combine is applied in group-rank
    /// order by the collective engine, so results are deterministic.
    ///
    /// # Panics
    /// Panics if lengths differ or are not a whole number of elements.
    pub fn combine(self, acc: &mut [u8], rhs: &[u8], dtype: DType) {
        assert_eq!(acc.len(), rhs.len(), "reduction payload length mismatch");
        let n = dtype.count(acc.len());
        match dtype {
            DType::F64 => {
                self.combine_prim::<f64, 8>(acc, rhs, n, f64::from_le_bytes, |x| x.to_le_bytes())
            }
            DType::I64 => {
                self.combine_prim::<i64, 8>(acc, rhs, n, i64::from_le_bytes, |x| x.to_le_bytes())
            }
            DType::U64 => {
                self.combine_prim::<u64, 8>(acc, rhs, n, u64::from_le_bytes, |x| x.to_le_bytes())
            }
            DType::U8 => {
                for i in 0..n {
                    acc[i] = match self {
                        ReduceOp::Sum => acc[i].wrapping_add(rhs[i]),
                        ReduceOp::Prod => acc[i].wrapping_mul(rhs[i]),
                        ReduceOp::Max => acc[i].max(rhs[i]),
                        ReduceOp::Min => acc[i].min(rhs[i]),
                    };
                }
            }
        }
    }

    fn combine_prim<T, const W: usize>(
        self,
        acc: &mut [u8],
        rhs: &[u8],
        n: usize,
        from: impl Fn([u8; W]) -> T,
        to: impl Fn(T) -> [u8; W],
    ) where
        T: Copy + PartialOrd + std::ops::Add<Output = T> + std::ops::Mul<Output = T>,
    {
        for i in 0..n {
            let off = i * W;
            let a = from(acc[off..off + W].try_into().unwrap());
            let b = from(rhs[off..off + W].try_into().unwrap());
            let r = match self {
                ReduceOp::Sum => a + b,
                ReduceOp::Prod => a * b,
                ReduceOp::Max => {
                    if b > a {
                        b
                    } else {
                        a
                    }
                }
                ReduceOp::Min => {
                    if b < a {
                        b
                    } else {
                        a
                    }
                }
            };
            acc[off..off + W].copy_from_slice(&to(r));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtype::{decode_f64, decode_i64, encode_f64, encode_i64};

    #[test]
    fn sum_f64() {
        let mut a = encode_f64(&[1.0, 2.0]).to_vec();
        let b = encode_f64(&[0.5, -1.0]);
        ReduceOp::Sum.combine(&mut a, &b, DType::F64);
        assert_eq!(decode_f64(&a), vec![1.5, 1.0]);
    }

    #[test]
    fn max_min_i64() {
        let mut a = encode_i64(&[3, -5]).to_vec();
        let b = encode_i64(&[1, 7]);
        ReduceOp::Max.combine(&mut a, &b, DType::I64);
        assert_eq!(decode_i64(&a), vec![3, 7]);
        let mut c = encode_i64(&[3, -5]).to_vec();
        ReduceOp::Min.combine(&mut c, &b, DType::I64);
        assert_eq!(decode_i64(&c), vec![1, -5]);
    }

    #[test]
    fn prod_u8_wraps() {
        let mut a = vec![16u8];
        ReduceOp::Prod.combine(&mut a, &[17u8], DType::U8);
        assert_eq!(a[0], 16u8.wrapping_mul(17));
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let mut a = vec![0u8; 8];
        ReduceOp::Sum.combine(&mut a, &[0u8; 16], DType::F64);
    }
}
