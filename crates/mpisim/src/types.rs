//! Small shared types: tags, source/tag selectors, identifiers.

/// Message tag, as in MPI: a non-negative application-chosen label.
pub type Tag = u32;

/// Identifier of a communicator inside one lower-half generation.
///
/// Communicator ids are "local resource handles" in the paper's words — they
/// are *not* stable across restart. `mana-core` virtualizes them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CommId(pub u64);

/// `MPI_COMM_WORLD`'s id in every lower-half generation.
pub const COMM_WORLD_ID: CommId = CommId(0);

/// Source selector for receives and probes (group-rank based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SrcSel {
    /// `MPI_ANY_SOURCE`.
    Any,
    /// A specific rank in the communicator's group.
    Rank(usize),
}

/// Tag selector for receives and probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagSel {
    /// `MPI_ANY_TAG`.
    Any,
    /// A specific tag.
    Tag(Tag),
}

impl SrcSel {
    /// Whether this selector accepts a message from `group_rank`.
    #[inline]
    pub fn matches(self, group_rank: usize) -> bool {
        match self {
            SrcSel::Any => true,
            SrcSel::Rank(r) => r == group_rank,
        }
    }
}

impl TagSel {
    /// Whether this selector accepts `tag`.
    #[inline]
    pub fn matches(self, tag: Tag) -> bool {
        match self {
            TagSel::Any => true,
            TagSel::Tag(t) => t == tag,
        }
    }
}

impl From<usize> for SrcSel {
    fn from(r: usize) -> Self {
        SrcSel::Rank(r)
    }
}

impl From<Tag> for TagSel {
    fn from(t: Tag) -> Self {
        TagSel::Tag(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectors_match() {
        assert!(SrcSel::Any.matches(7));
        assert!(SrcSel::Rank(7).matches(7));
        assert!(!SrcSel::Rank(7).matches(8));
        assert!(TagSel::Any.matches(0));
        assert!(TagSel::Tag(3).matches(3));
        assert!(!TagSel::Tag(3).matches(4));
    }

    #[test]
    fn conversions() {
        assert_eq!(SrcSel::from(5), SrcSel::Rank(5));
        assert_eq!(TagSel::from(9u32), TagSel::Tag(9));
    }
}
