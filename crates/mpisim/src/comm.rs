//! Communicators: lower-half handles binding a [`Group`] to a message
//! context.
//!
//! Communicator ids are local resource handles (paper §4.1): they are valid
//! only within one lower-half generation and are *not* stable across
//! restart. The upper half (`mana-core`) identifies communicators globally
//! by the ggid of their group and replays communicator creation into a
//! fresh lower half at restart.

use crate::group::Group;
use crate::types::CommId;
use std::sync::Arc;

/// Shared communicator state.
#[derive(Debug)]
pub struct CommInner {
    /// Lower-half handle.
    pub id: CommId,
    /// The member group (group rank → world rank).
    pub group: Group,
    /// Lower-half generation this communicator belongs to.
    pub epoch: u64,
}

/// A cheaply clonable communicator handle, as held by one rank.
///
/// Carries the caller's group rank so the common `comm.rank()` /
/// `comm.size()` calls are free.
#[derive(Debug, Clone)]
pub struct Comm {
    pub(crate) inner: Arc<CommInner>,
    /// The owning rank's position in the group.
    pub(crate) my_group_rank: usize,
}

impl Comm {
    /// Builds a handle for `world_rank`'s view of `inner`.
    ///
    /// # Panics
    /// Panics if `world_rank` is not a member of the communicator's group.
    pub fn for_world_rank(inner: Arc<CommInner>, world_rank: usize) -> Comm {
        let my_group_rank = inner
            .group
            .group_rank_of_world(world_rank)
            .unwrap_or_else(|| {
                panic!(
                    "world rank {world_rank} is not a member of comm {:?}",
                    inner.id
                )
            });
        Comm {
            inner,
            my_group_rank,
        }
    }

    /// This communicator's lower-half id.
    #[inline]
    pub fn id(&self) -> CommId {
        self.inner.id
    }

    /// The caller's rank in this communicator (`MPI_Comm_rank`).
    #[inline]
    pub fn rank(&self) -> usize {
        self.my_group_rank
    }

    /// Number of members (`MPI_Comm_size`).
    #[inline]
    pub fn size(&self) -> usize {
        self.inner.group.size()
    }

    /// The member group.
    #[inline]
    pub fn group(&self) -> &Group {
        &self.inner.group
    }

    /// Lower-half generation.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// World rank of a group rank.
    #[inline]
    pub fn world_rank(&self, group_rank: usize) -> usize {
        self.inner.group.world_rank(group_rank)
    }
}

/// The `SplitKey::color` disambiguator for `MPI_Comm_create`: a hash of
/// the target group's member world ranks (order-insensitive). Shared by
/// live creation (`Ctx::comm_create`) and checkpoint-restart replay so
/// both derive the same registry key; `|1` keeps it clear of `comm_dup`'s
/// reserved `i64::MIN`.
pub fn create_color(members: &[usize]) -> i64 {
    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    let mut h: i64 = 0x9E37;
    for w in sorted {
        h = h.wrapping_mul(0x100_0000_01B3).wrapping_add(w as i64);
    }
    h | 1
}

/// Key identifying one communicator-creation collective, so that all
/// participating ranks agree on the new `CommId` without extra messaging:
/// the first rank to reach the registry allocates, the rest look it up.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SplitKey {
    /// Parent communicator.
    pub parent: CommId,
    /// Ordinal of this creation op among the parent's collective calls.
    pub seq: u64,
    /// Disambiguator: the split color, or a hash of the target group.
    pub color: i64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comm(members: Vec<usize>, world_rank: usize) -> Comm {
        Comm::for_world_rank(
            Arc::new(CommInner {
                id: CommId(3),
                group: Group::new(members),
                epoch: 0,
            }),
            world_rank,
        )
    }

    #[test]
    fn handle_views() {
        let c = comm(vec![4, 2, 9], 2);
        assert_eq!(c.rank(), 1);
        assert_eq!(c.size(), 3);
        assert_eq!(c.world_rank(2), 9);
        assert_eq!(c.id(), CommId(3));
    }

    #[test]
    #[should_panic]
    fn non_member_rejected() {
        comm(vec![4, 2, 9], 7);
    }
}
