//! `Ctx`: one rank's handle to the simulated MPI library.
//!
//! A `Ctx` lives on its rank's thread and is the only way that rank talks
//! to the lower half. It owns the rank's virtual clock and its per-
//! communicator collective ordinals. All MPI-like calls are methods here;
//! the checkpointing layers (`mana-core`) interpose by wrapping these
//! methods, never by reaching into the lower half.

use crate::collective::{CollResult, RedSpec};
use crate::comm::{Comm, SplitKey};
use crate::dtype::{decode_f64, encode_f64, DType};
use crate::group::Group;
use crate::mailbox::MatchSpec;
use crate::msg::{InFlightMsg, Status};
use crate::reduce_op::ReduceOp;
use crate::request::{Completion, ReqKind, Request};
use crate::types::{CommId, SrcSel, Tag, TagSel, COMM_WORLD_ID};
use crate::world::World;
use bytes::Bytes;
use netmodel::{CollOp, VTime};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Poll-loop nap bound: how long [`Ctx::park_briefly`] sleeps when no
/// mailbox activity arrives. Poll loops can be *self-driving* — a `Test`
/// loop waiting out a virtual completion time advances its own clock with
/// every poll, so no external event will ever arrive — which is why this
/// stays short (it bounds each such iteration) while still being
/// activity-cut: deposits and collective completions end the nap at once,
/// so event-driven waiters never pay it. Wall-clock only; virtual time is
/// unaffected. Expiries here are *not* counted as backstop failures — for
/// a self-driving poller the expiry is the productive path.
const POLL_NAP: Duration = Duration::from_millis(5);

/// Backstop for the slotless blocked-receive wait. *Every* rank of a
/// large world can sit in a blocked receive at once, so the wait is
/// event-driven — the activity token taken before the queue scan makes
/// deposits race-proof — and the timeout only guards against a
/// pathological lost wakeup. It is deliberately long (a short re-check
/// would turn thousands of parked receivers into timed pollers) and every
/// expiry is counted in [`crate::sched::WakeupStats`]: a healthy run
/// never pays it.
const RECV_PARK: Duration = Duration::from_secs(1);

/// Consecutive slot rotations a polling loop performs before it naps.
/// When every run slot is held by a poller waiting on something none of
/// them produces (say, the checkpoint supervision thread's next trigger
/// poll), rotation alone would spin the whole pool at full host CPU;
/// after this many unbroken rotations the poller sleeps briefly —
/// slotless — instead.
const YIELD_STREAK_NAP: u32 = 64;

/// One rank's connection to the simulated MPI world.
pub struct Ctx {
    world: Arc<World>,
    world_rank: usize,
    clock: VTime,
    /// Per-communicator collective ordinal (all ranks agree by MPI rules).
    comm_seqs: HashMap<CommId, u64>,
    /// Per-destination send sequence (non-overtaking bookkeeping).
    send_seqs: HashMap<usize, u64>,
    /// Messages this rank deposited into the current lower-half generation
    /// (drain-accounting; reset at [`Ctx::attach_world`]).
    p2p_sent: u64,
    /// Messages this rank completed receiving from the current generation
    /// (drain-accounting; reset at [`Ctx::attach_world`]).
    p2p_delivered: u64,
    /// Consecutive [`Ctx::park_briefly`] slot rotations without an
    /// intervening nap (spin bound — see [`YIELD_STREAK_NAP`]).
    yield_streak: std::cell::Cell<u32>,
}

impl Ctx {
    /// Creates the context for `world_rank` on `world`.
    pub fn new(world: Arc<World>, world_rank: usize) -> Self {
        assert!(world_rank < world.n_ranks(), "rank out of range");
        Ctx {
            world,
            world_rank,
            clock: VTime::ZERO,
            comm_seqs: HashMap::new(),
            send_seqs: HashMap::new(),
            p2p_sent: 0,
            p2p_delivered: 0,
            yield_streak: std::cell::Cell::new(0),
        }
    }

    // ------------------------------------------------------------------
    // Introspection & clock
    // ------------------------------------------------------------------

    /// This rank's world rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.world_rank
    }

    /// Number of ranks in the world.
    #[inline]
    pub fn world_size(&self) -> usize {
        self.world.n_ranks()
    }

    /// The current virtual time of this rank.
    #[inline]
    pub fn clock(&self) -> VTime {
        self.clock
    }

    /// Advances the clock by `secs` of local computation.
    #[inline]
    pub fn compute(&mut self, secs: f64) {
        self.clock += secs;
    }

    /// Moves the clock forward to `t` (no-op if already past).
    #[inline]
    pub fn advance_to(&mut self, t: VTime) {
        self.clock.advance_to(t);
    }

    /// **Restore hook.** Overwrites the clock outright. Only the
    /// checkpoint engine may call this — when a rank is rebuilt from a
    /// checkpoint image, the image's captured clock is authoritative and
    /// replaces whatever the replay accumulated.
    #[inline]
    pub fn set_clock(&mut self, t: VTime) {
        self.clock = t;
    }

    /// The world this context is attached to.
    #[inline]
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// **Restart hook.** Attaches a fresh lower half. Per-generation state
    /// (collective ordinals, send sequences) is reset; the clock survives —
    /// the rank keeps existing, only its MPI library is replaced.
    pub fn attach_world(&mut self, world: Arc<World>) {
        assert_eq!(
            world.n_ranks(),
            self.world.n_ranks(),
            "restart must preserve the number of ranks"
        );
        self.world = world;
        self.comm_seqs.clear();
        self.send_seqs.clear();
        self.p2p_sent = 0;
        self.p2p_delivered = 0;
    }

    /// **Checkpoint hook.** This rank's p2p flow against the current
    /// lower-half generation: `(messages deposited, messages delivered)`.
    /// Together with [`World::p2p_accounting`] these close the drain-
    /// completeness identity the coordinator checks at every capture.
    #[inline]
    pub fn p2p_flow(&self) -> (u64, u64) {
        (self.p2p_sent, self.p2p_delivered)
    }

    /// The cooperative yield-point of polling loops. Under scheduler
    /// contention this rotates the rank's run slot to the next queued rank
    /// (round-robin); otherwise it waits — slotless and event-driven — on
    /// this rank's mailbox activity token, so idle polls do not burn host
    /// CPU. Deposits *and* collective completions count as activity
    /// (completion pokes every participant's mailbox), so waits on either
    /// return at once; the [`POLL_NAP`] bound only paces self-driving
    /// pollers whose progress is their own clock advance. A long unbroken
    /// streak of rotations means every slot holder is a poller waiting on
    /// something none of them produces — the streak is capped with the
    /// same slotless wait so the pool cannot spin at full CPU against an
    /// external event source. Wall-clock only; virtual time is
    /// unaffected.
    pub fn park_briefly(&self) {
        // Poll loops re-enter here on every iteration, so this is the
        // poison observation point for every poll-driven wait: a killed
        // world unwinds the rank instead of polling a dead peer forever.
        self.world.fail_plane().die_if_poisoned();
        if self.world.sched.yield_now(self.world_rank) {
            let streak = self.yield_streak.get() + 1;
            if streak < YIELD_STREAK_NAP {
                self.yield_streak.set(streak);
                return;
            }
        }
        self.yield_streak.set(0);
        let mb = self.world.mailbox(self.world_rank);
        let token = mb.activity_token();
        self.world
            .sched
            .blocking(self.world_rank, || mb.wait_activity_since(token, POLL_NAP));
    }

    /// Runs `f` — a wait that may block on a condition variable — with
    /// this rank's scheduler run slot released, re-acquiring it before
    /// returning. Exposed for the checkpoint layer's park paths (drain
    /// gate, trivial barrier, quiesce); all blocking waits inside `Ctx`
    /// already use it.
    pub fn blocked<T>(&self, f: impl FnOnce() -> T) -> T {
        self.world.sched.blocking(self.world_rank, f)
    }

    fn check_epoch(&self, comm: &Comm) {
        assert_eq!(
            comm.epoch(),
            self.world.epoch,
            "stale communicator handle from lower-half generation {} used in generation {} \
             (handles must be re-created after restart)",
            comm.epoch(),
            self.world.epoch
        );
    }

    fn bump_comm_seq(&mut self, id: CommId) -> u64 {
        let seq = self.comm_seqs.entry(id).or_insert(0);
        let s = *seq;
        *seq += 1;
        s
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// `MPI_COMM_WORLD` for this generation.
    pub fn comm_world(&self) -> Comm {
        Comm::for_world_rank(self.world.comm_inner(COMM_WORLD_ID), self.world_rank)
    }

    /// `MPI_Comm_split`: collective over `parent`. Ranks passing the same
    /// non-negative `color` land in the same new communicator, ordered by
    /// `(key, parent rank)`. A negative color (`MPI_UNDEFINED`) yields
    /// `None`.
    pub fn comm_split(&mut self, parent: &Comm, color: i64, key: i64) -> Option<Comm> {
        self.check_epoch(parent);
        let seq = self.bump_comm_seq(parent.id());
        // Allgather (color, key) over the parent — this is both the data
        // plane of the split and its (realistic) timing cost.
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&color.to_le_bytes());
        payload.extend_from_slice(&key.to_le_bytes());
        let gathered = self.run_collective(
            parent,
            seq,
            CollOp::Allgather,
            0,
            Bytes::from(payload),
            None,
        );
        self.comm_split_finish(parent, seq, color, &gathered)
    }

    /// `MPI_Comm_dup`: duplicates `parent` (same group, fresh context id).
    pub fn comm_dup(&mut self, parent: &Comm) -> Comm {
        self.check_epoch(parent);
        let seq = self.bump_comm_seq(parent.id());
        // Synchronize (and charge) like a tiny allgather.
        let _ = self.run_collective(parent, seq, CollOp::Allgather, 0, Bytes::new(), None);
        self.comm_dup_finish(parent, seq)
    }

    /// `MPI_Comm_create`: collective over `parent`; ranks inside `group`
    /// get the new communicator, others get `None`.
    pub fn comm_create(&mut self, parent: &Comm, group: &Group) -> Option<Comm> {
        self.check_epoch(parent);
        let seq = self.bump_comm_seq(parent.id());
        let _ = self.run_collective(parent, seq, CollOp::Allgather, 0, Bytes::new(), None);
        if !group.contains_world(self.world_rank) {
            return None;
        }
        let inner = self.world.comm_for_split(
            SplitKey {
                parent: parent.id(),
                seq,
                color: crate::comm::create_color(group.members()),
            },
            group.clone(),
        );
        Some(Comm::for_world_rank(inner, self.world_rank))
    }

    /// `MPI_Comm_free`.
    pub fn comm_free(&mut self, comm: Comm) {
        self.check_epoch(&comm);
        self.world.free_comm(comm.id());
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// `MPI_Isend` (eager): deposits the message at the destination and
    /// completes locally after the injection overhead.
    pub fn isend(
        &mut self,
        comm: &Comm,
        to: usize,
        tag: Tag,
        payload: impl Into<Bytes>,
    ) -> Request {
        self.check_epoch(comm);
        let payload: Bytes = payload.into();
        let dst_world = comm.world_rank(to);
        let p = self.world.params();
        let send_done = self.clock.plus_secs(p.send_overhead);
        let arrival = send_done.plus_secs(
            p.alpha(self.world.topology(), self.world_rank, dst_world)
                + payload.len() as f64 * p.beta(self.world.topology(), self.world_rank, dst_world),
        );
        let seq = {
            let s = self.send_seqs.entry(dst_world).or_insert(0);
            let v = *s;
            *s += 1;
            v
        };
        self.world.mailbox(dst_world).deposit(InFlightMsg {
            src_world: self.world_rank,
            dst_world,
            comm: comm.id(),
            tag,
            payload,
            sent: send_done,
            arrival,
            seq,
        });
        self.p2p_sent += 1;
        self.clock = send_done;
        Request::send(send_done)
    }

    /// `MPI_Send` (blocking, eager semantics: returns once injected).
    pub fn send(&mut self, comm: &Comm, to: usize, tag: Tag, payload: impl Into<Bytes>) {
        let mut r = self.isend(comm, to, tag, payload);
        self.wait(&mut r);
    }

    /// `MPI_Irecv`: posts a receive. Matching happens at `test`/`wait`.
    pub fn irecv(
        &mut self,
        comm: &Comm,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
    ) -> Request {
        self.check_epoch(comm);
        Request::recv(comm.clone(), src.into(), tag.into())
    }

    /// `MPI_Recv` (blocking): returns the payload and status.
    pub fn recv(
        &mut self,
        comm: &Comm,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
    ) -> (Bytes, Status) {
        let mut r = self.irecv(comm, src, tag);
        let c = self.wait(&mut r);
        (c.data, c.status.expect("recv completion carries status"))
    }

    /// `MPI_Sendrecv`: posts both sides, then completes both (deadlock-free
    /// pairwise exchange).
    pub fn sendrecv(
        &mut self,
        comm: &Comm,
        to: usize,
        send_tag: Tag,
        payload: impl Into<Bytes>,
        from: impl Into<SrcSel>,
        recv_tag: impl Into<TagSel>,
    ) -> (Bytes, Status) {
        let mut s = self.isend(comm, to, send_tag, payload);
        let mut r = self.irecv(comm, from, recv_tag);
        self.wait(&mut s);
        let c = self.wait(&mut r);
        (c.data, c.status.expect("recv status"))
    }

    /// `MPI_Iprobe`: non-blocking check for a matching message. Charges one
    /// poll. Returns the status of the first match whose data has arrived
    /// by the current virtual time.
    pub fn iprobe(
        &mut self,
        comm: &Comm,
        src: impl Into<SrcSel>,
        tag: impl Into<TagSel>,
    ) -> Option<Status> {
        self.check_epoch(comm);
        self.clock += self.world.params().poll_overhead;
        let spec = MatchSpec {
            comm: comm.id(),
            group: comm.group(),
            src: src.into(),
            tag: tag.into(),
        };
        let (src_gr, tag, len, arrival) = self.world.mailbox(self.world_rank).peek_match(&spec)?;
        if arrival <= self.clock {
            Some(Status {
                source: src_gr,
                tag,
                len,
            })
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Request completion
    // ------------------------------------------------------------------

    /// `MPI_Wait`: blocks until the request completes; the request becomes
    /// `MPI_REQUEST_NULL`.
    pub fn wait(&mut self, req: &mut Request) -> Completion {
        match req.kind.take() {
            None => Completion::empty(),
            Some(ReqKind::Send { complete_at }) => {
                self.clock.advance_to(complete_at);
                Completion::empty()
            }
            Some(ReqKind::Recv {
                comm,
                src,
                tag,
                matched,
            }) => {
                let msg = match matched {
                    Some(m) => m,
                    None => {
                        let world = &self.world;
                        let rank = self.world_rank;
                        // Blocked receive: release the run slot while
                        // waiting on the mailbox (woken by deposits).
                        world.sched.blocking(rank, || loop {
                            // A poisoned world wakes every mailbox; the
                            // sender may be dead, so unwind rather than
                            // re-park (the runner releases the slot).
                            world.fail_plane().die_if_poisoned();
                            // Token before the scan: a deposit racing the
                            // scan is seen by `wait_activity_since`, so
                            // the long backstop is never paid for it.
                            let token = world.mailbox(rank).activity_token();
                            let spec = MatchSpec {
                                comm: comm.id(),
                                group: comm.group(),
                                src,
                                tag,
                            };
                            if let Some(m) = world.mailbox(rank).take_match(&spec) {
                                break m;
                            }
                            if !world.mailbox(rank).wait_activity_since(token, RECV_PARK) {
                                world.sched.stats().record_backstop_expiry();
                            }
                        })
                    }
                };
                self.finish_recv(&comm, msg)
            }
            Some(ReqKind::Coll { inst, group_rank }) => {
                // Collective rendezvous park: slotless until the last
                // participant completes the instance.
                let res = self
                    .world
                    .sched
                    .blocking(self.world_rank, || inst.wait_and_take(group_rank));
                self.finish_coll(&inst.key, res)
            }
        }
    }

    /// `MPI_Test`: non-blocking completion check; charges one poll. On
    /// completion the request becomes `MPI_REQUEST_NULL`.
    pub fn test(&mut self, req: &mut Request) -> Option<Completion> {
        match &mut req.kind {
            None => Some(Completion::empty()),
            Some(ReqKind::Send { complete_at }) => {
                self.clock += self.world.params().poll_overhead;
                if *complete_at <= self.clock {
                    req.kind = None;
                    Some(Completion::empty())
                } else {
                    None
                }
            }
            Some(ReqKind::Recv {
                comm,
                src,
                tag,
                matched,
            }) => {
                self.clock += self.world.params().poll_overhead;
                if matched.is_none() {
                    let spec = MatchSpec {
                        comm: comm.id(),
                        group: comm.group(),
                        src: *src,
                        tag: *tag,
                    };
                    *matched = self.world.mailbox(self.world_rank).take_match(&spec);
                }
                let arrived = matches!(matched, Some(m) if m.arrival <= self.clock);
                if arrived {
                    let (comm, msg) = match req.kind.take() {
                        Some(ReqKind::Recv {
                            comm,
                            matched: Some(m),
                            ..
                        }) => (comm, m),
                        _ => unreachable!(),
                    };
                    Some(self.finish_recv(&comm, msg))
                } else {
                    None
                }
            }
            Some(ReqKind::Coll { inst, group_rank }) => {
                self.clock += self.world.params().poll_overhead;
                let done = match inst.exit_of(*group_rank) {
                    Some(exit) => exit <= self.clock,
                    None => false,
                };
                if done {
                    let (inst, group_rank) = match req.kind.take() {
                        Some(ReqKind::Coll { inst, group_rank }) => (inst, group_rank),
                        _ => unreachable!(),
                    };
                    let res = inst.try_take(group_rank).expect("checked complete");
                    Some(self.finish_coll(&inst.key, res))
                } else {
                    None
                }
            }
        }
    }

    /// **Checkpoint-engine hook.** Attempts to complete `req` like
    /// [`Ctx::wait`] would, but returns `None` instead of blocking when the
    /// operation cannot complete yet. Unlike [`Ctx::test`] it charges no
    /// poll overhead and (like `wait`) advances the clock to the
    /// operation's completion time, so a polling loop built on it produces
    /// the same virtual-time trajectory as a blocking wait — the property
    /// the checkpoint layer needs to interleave drain servicing with
    /// request completion without perturbing timing.
    pub fn try_complete(&mut self, req: &mut Request) -> Option<Completion> {
        match &mut req.kind {
            None => Some(Completion::empty()),
            Some(ReqKind::Send { complete_at }) => {
                let t = *complete_at;
                req.kind = None;
                self.clock.advance_to(t);
                Some(Completion::empty())
            }
            Some(ReqKind::Recv {
                comm,
                src,
                tag,
                matched,
            }) => {
                if matched.is_none() {
                    let spec = MatchSpec {
                        comm: comm.id(),
                        group: comm.group(),
                        src: *src,
                        tag: *tag,
                    };
                    *matched = self.world.mailbox(self.world_rank).take_match(&spec);
                }
                if matched.is_some() {
                    let (comm, msg) = match req.kind.take() {
                        Some(ReqKind::Recv {
                            comm,
                            matched: Some(m),
                            ..
                        }) => (comm, m),
                        _ => unreachable!(),
                    };
                    Some(self.finish_recv(&comm, msg))
                } else {
                    None
                }
            }
            Some(ReqKind::Coll { inst, group_rank }) => {
                if inst.is_complete() {
                    let res = inst.try_take(*group_rank).expect("checked complete");
                    let (inst, _) = match req.kind.take() {
                        Some(ReqKind::Coll { inst, group_rank }) => (inst, group_rank),
                        _ => unreachable!(),
                    };
                    Some(self.finish_coll(&inst.key, res))
                } else {
                    None
                }
            }
        }
    }

    /// `MPI_Waitall`.
    pub fn waitall(&mut self, reqs: &mut [Request]) -> Vec<Completion> {
        reqs.iter_mut().map(|r| self.wait(r)).collect()
    }

    /// `MPI_Waitany`: blocks until one non-null request completes; returns
    /// its index. Returns `None` if every request is null.
    pub fn waitany(&mut self, reqs: &mut [Request]) -> Option<(usize, Completion)> {
        if reqs.iter().all(Request::is_null) {
            return None;
        }
        loop {
            for (i, r) in reqs.iter_mut().enumerate() {
                if r.is_null() {
                    continue;
                }
                if let Some(c) = self.test(r) {
                    return Some((i, c));
                }
            }
            self.park_briefly();
        }
    }

    fn finish_recv(&mut self, comm: &Comm, msg: InFlightMsg) -> Completion {
        self.p2p_delivered += 1;
        self.clock.advance_to(msg.arrival);
        let source = comm
            .group()
            .group_rank_of_world(msg.src_world)
            .expect("matched message source is in group");
        Completion {
            status: Some(Status {
                source,
                tag: msg.tag,
                len: msg.payload.len(),
            }),
            data: msg.payload,
        }
    }

    fn finish_coll(&mut self, key: &(CommId, u64), res: CollResult) -> Completion {
        if res.last {
            self.world.coll.retire(*key);
        }
        self.clock.advance_to(res.exit);
        Completion {
            status: None,
            data: res.data,
        }
    }

    // ------------------------------------------------------------------
    // Blocking collectives
    // ------------------------------------------------------------------

    fn run_collective(
        &mut self,
        comm: &Comm,
        seq: u64,
        op: CollOp,
        root: usize,
        payload: Bytes,
        red: Option<RedSpec>,
    ) -> Bytes {
        let inst = self.world.coll.get_or_create(
            (comm.id(), seq),
            op,
            root,
            red,
            comm.group(),
            || self.world.alloc_instance(),
            || self.world.instance_env(comm.group()),
        );
        inst.enter(comm.rank(), self.clock, payload, op, root, red);
        let group_rank = comm.rank();
        let res = self
            .world
            .sched
            .blocking(self.world_rank, || inst.wait_and_take(group_rank));
        let key = inst.key;
        if res.last {
            self.world.coll.retire(key);
        }
        self.clock.advance_to(res.exit);
        res.data
    }

    /// Blocking collective entry point (all specific calls route here).
    pub fn collective(
        &mut self,
        comm: &Comm,
        op: CollOp,
        root: usize,
        payload: Bytes,
        red: Option<RedSpec>,
    ) -> Bytes {
        self.check_epoch(comm);
        let seq = self.bump_comm_seq(comm.id());
        self.run_collective(comm, seq, op, root, payload, red)
    }

    /// `MPI_Barrier`.
    pub fn barrier(&mut self, comm: &Comm) {
        let _ = self.collective(comm, CollOp::Barrier, 0, Bytes::new(), None);
    }

    /// `MPI_Bcast`: root supplies `data`; everyone receives it.
    pub fn bcast(&mut self, comm: &Comm, root: usize, data: Bytes) -> Bytes {
        self.collective(comm, CollOp::Bcast, root, data, None)
    }

    /// `MPI_Reduce` (root receives the combined payload, others empty).
    pub fn reduce(
        &mut self,
        comm: &Comm,
        root: usize,
        data: Bytes,
        dtype: DType,
        op: ReduceOp,
    ) -> Bytes {
        self.collective(
            comm,
            CollOp::Reduce,
            root,
            data,
            Some(RedSpec { dtype, op }),
        )
    }

    /// `MPI_Allreduce`.
    pub fn allreduce(&mut self, comm: &Comm, data: Bytes, dtype: DType, op: ReduceOp) -> Bytes {
        self.collective(
            comm,
            CollOp::Allreduce,
            0,
            data,
            Some(RedSpec { dtype, op }),
        )
    }

    /// `MPI_Allreduce` on `f64` slices (convenience).
    pub fn allreduce_f64(&mut self, comm: &Comm, data: &[f64], op: ReduceOp) -> Vec<f64> {
        decode_f64(&self.allreduce(comm, encode_f64(data), DType::F64, op))
    }

    /// `MPI_Gather` (root receives concatenation in group order).
    pub fn gather(&mut self, comm: &Comm, root: usize, data: Bytes) -> Bytes {
        self.collective(comm, CollOp::Gather, root, data, None)
    }

    /// `MPI_Allgather`.
    pub fn allgather(&mut self, comm: &Comm, data: Bytes) -> Bytes {
        self.collective(comm, CollOp::Allgather, 0, data, None)
    }

    /// `MPI_Alltoall`: `data` is `size()` equal blocks; block `j` goes to
    /// rank `j`. Returns the blocks received from each rank, concatenated.
    ///
    /// # Panics
    /// Panics if `data` does not divide into `size()` equal blocks.
    pub fn alltoall(&mut self, comm: &Comm, data: Bytes) -> Bytes {
        assert!(
            data.len().is_multiple_of(comm.size()),
            "alltoall payload must be comm.size() equal blocks"
        );
        self.collective(comm, CollOp::Alltoall, 0, data, None)
    }

    /// `MPI_Scatter` (root supplies `size()` blocks).
    pub fn scatter(&mut self, comm: &Comm, root: usize, data: Bytes) -> Bytes {
        if comm.rank() == root {
            assert!(
                data.len().is_multiple_of(comm.size()),
                "scatter payload must be comm.size() equal blocks"
            );
        }
        self.collective(comm, CollOp::Scatter, root, data, None)
    }

    /// `MPI_Scan` (inclusive prefix reduction).
    pub fn scan(&mut self, comm: &Comm, data: Bytes, dtype: DType, op: ReduceOp) -> Bytes {
        self.collective(comm, CollOp::Scan, 0, data, Some(RedSpec { dtype, op }))
    }

    /// `MPI_Reduce_scatter_block`.
    pub fn reduce_scatter(
        &mut self,
        comm: &Comm,
        data: Bytes,
        dtype: DType,
        op: ReduceOp,
    ) -> Bytes {
        assert!(
            data.len().is_multiple_of(comm.size()),
            "reduce_scatter payload must be comm.size() equal blocks"
        );
        self.collective(
            comm,
            CollOp::ReduceScatter,
            0,
            data,
            Some(RedSpec { dtype, op }),
        )
    }

    // ------------------------------------------------------------------
    // Non-blocking collectives
    // ------------------------------------------------------------------

    /// Non-blocking collective entry point: initiates the operation and
    /// returns a request. Once every participant has initiated, the
    /// operation progresses independently (MPI Example 6.36) and completes
    /// at its modelled time.
    pub fn icollective(
        &mut self,
        comm: &Comm,
        op: CollOp,
        root: usize,
        payload: Bytes,
        red: Option<RedSpec>,
    ) -> Request {
        self.check_epoch(comm);
        let seq = self.bump_comm_seq(comm.id());
        let inst = self.world.coll.get_or_create(
            (comm.id(), seq),
            op,
            root,
            red,
            comm.group(),
            || self.world.alloc_instance(),
            || self.world.instance_env(comm.group()),
        );
        // Initiation cost: posting the operation.
        self.clock += self.world.params().send_overhead;
        inst.enter(comm.rank(), self.clock, payload, op, root, red);
        Request::coll(inst, comm.rank())
    }

    /// `MPI_Ibarrier`.
    pub fn ibarrier(&mut self, comm: &Comm) -> Request {
        self.icollective(comm, CollOp::Barrier, 0, Bytes::new(), None)
    }

    /// `MPI_Ibcast`.
    pub fn ibcast(&mut self, comm: &Comm, root: usize, data: Bytes) -> Request {
        self.icollective(comm, CollOp::Bcast, root, data, None)
    }

    /// `MPI_Iallreduce`.
    pub fn iallreduce(&mut self, comm: &Comm, data: Bytes, dtype: DType, op: ReduceOp) -> Request {
        self.icollective(
            comm,
            CollOp::Allreduce,
            0,
            data,
            Some(RedSpec { dtype, op }),
        )
    }

    /// `MPI_Ialltoall`.
    pub fn ialltoall(&mut self, comm: &Comm, data: Bytes) -> Request {
        assert!(
            data.len().is_multiple_of(comm.size()),
            "ialltoall payload must be comm.size() equal blocks"
        );
        self.icollective(comm, CollOp::Alltoall, 0, data, None)
    }

    /// `MPI_Iallgather`.
    pub fn iallgather(&mut self, comm: &Comm, data: Bytes) -> Request {
        self.icollective(comm, CollOp::Allgather, 0, data, None)
    }

    // ------------------------------------------------------------------
    // Step-mode decompositions
    // ------------------------------------------------------------------
    //
    // Poll-driven halves of the blocking calls above, for rank bodies
    // lowered to step functions: a step rank cannot sit in
    // `blocking(wait_and_take)`, so it *begins* the operation here
    // (entering the instance exactly like the blocking path — no
    // initiation charge, unlike `icollective`) and then drives the
    // returned request with [`Ctx::try_complete`], which advances the
    // clock to the completion time just like `wait` would. The two
    // representations therefore produce bit-identical virtual-time
    // trajectories.

    fn begin_collective(
        &mut self,
        comm: &Comm,
        seq: u64,
        op: CollOp,
        root: usize,
        payload: Bytes,
        red: Option<RedSpec>,
    ) -> Request {
        let inst = self.world.coll.get_or_create(
            (comm.id(), seq),
            op,
            root,
            red,
            comm.group(),
            || self.world.alloc_instance(),
            || self.world.instance_env(comm.group()),
        );
        inst.enter(comm.rank(), self.clock, payload, op, root, red);
        Request::coll(inst, comm.rank())
    }

    /// Begins a *blocking-semantics* collective without blocking: enters
    /// the instance at the current clock (no initiation charge) and
    /// returns the request to poll with [`Ctx::try_complete`]. The
    /// step-mode counterpart of [`Ctx::collective`].
    pub fn coll_begin(
        &mut self,
        comm: &Comm,
        op: CollOp,
        root: usize,
        payload: Bytes,
        red: Option<RedSpec>,
    ) -> Request {
        self.check_epoch(comm);
        let seq = self.bump_comm_seq(comm.id());
        self.begin_collective(comm, seq, op, root, payload, red)
    }

    /// Begins the allgather phase of `MPI_Comm_split` (step-mode half of
    /// [`Ctx::comm_split`]). Returns the request and the parent-comm
    /// ordinal the split will be registered under; pass both, plus the
    /// gathered payload from [`Ctx::try_complete`], to
    /// [`Ctx::comm_split_finish`].
    pub fn comm_split_begin(&mut self, parent: &Comm, color: i64, key: i64) -> (Request, u64) {
        self.check_epoch(parent);
        let seq = self.bump_comm_seq(parent.id());
        let mut payload = Vec::with_capacity(16);
        payload.extend_from_slice(&color.to_le_bytes());
        payload.extend_from_slice(&key.to_le_bytes());
        let req = self.begin_collective(
            parent,
            seq,
            CollOp::Allgather,
            0,
            Bytes::from(payload),
            None,
        );
        (req, seq)
    }

    /// Builds the split communicator from the gathered `(color, key)`
    /// pairs. Shared by the blocking [`Ctx::comm_split`] and the step-mode
    /// begin/finish pair — the decode is representation-independent.
    pub fn comm_split_finish(
        &mut self,
        parent: &Comm,
        seq: u64,
        color: i64,
        gathered: &Bytes,
    ) -> Option<Comm> {
        if color < 0 {
            return None;
        }
        // Decode all (color, key) pairs and build my color's member list.
        let mut members: Vec<(i64, usize)> = Vec::new(); // (key, parent rank)
        for (gr, chunk) in gathered.chunks_exact(16).enumerate() {
            let c = i64::from_le_bytes(chunk[0..8].try_into().unwrap());
            let k = i64::from_le_bytes(chunk[8..16].try_into().unwrap());
            if c == color {
                members.push((k, gr));
            }
        }
        members.sort();
        let group = Group::new(
            members
                .iter()
                .map(|&(_, gr)| parent.group().world_rank(gr))
                .collect(),
        );
        let inner = self.world.comm_for_split(
            SplitKey {
                parent: parent.id(),
                seq,
                color,
            },
            group,
        );
        Some(Comm::for_world_rank(inner, self.world_rank))
    }

    /// Begins the synchronization phase of `MPI_Comm_dup` (step-mode half
    /// of [`Ctx::comm_dup`]). Complete the request with
    /// [`Ctx::try_complete`], then call [`Ctx::comm_dup_finish`].
    pub fn comm_dup_begin(&mut self, parent: &Comm) -> (Request, u64) {
        self.check_epoch(parent);
        let seq = self.bump_comm_seq(parent.id());
        let req = self.begin_collective(parent, seq, CollOp::Allgather, 0, Bytes::new(), None);
        (req, seq)
    }

    /// Builds the duplicate communicator once the dup synchronization
    /// completed. Shared by [`Ctx::comm_dup`] and the step-mode pair.
    pub fn comm_dup_finish(&mut self, parent: &Comm, seq: u64) -> Comm {
        let inner = self.world.comm_for_split(
            SplitKey {
                parent: parent.id(),
                seq,
                color: i64::MIN, // reserved for dup
            },
            parent.group().clone(),
        );
        Comm::for_world_rank(inner, self.world_rank)
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("rank", &self.world_rank)
            .field("clock", &self.clock)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{run_world, WorldConfig};
    use netmodel::NetParams;

    fn cfg(n: usize) -> WorldConfig {
        WorldConfig::single_node(n).with_params(NetParams::slingshot11().without_jitter())
    }

    #[test]
    fn p2p_ping() {
        run_world(cfg(2), |ctx| {
            let w = ctx.comm_world();
            if ctx.rank() == 0 {
                ctx.send(&w, 1, 7, Bytes::from_static(b"ping"));
            } else {
                let (data, st) = ctx.recv(&w, 0, 7);
                assert_eq!(data.as_ref(), b"ping");
                assert_eq!(st.source, 0);
                assert_eq!(st.tag, 7);
                assert!(ctx.clock() > VTime::ZERO, "recv must advance vtime");
            }
        });
    }

    #[test]
    fn p2p_nonovertaking_same_tag() {
        run_world(cfg(2), |ctx| {
            let w = ctx.comm_world();
            if ctx.rank() == 0 {
                for i in 0..10u8 {
                    ctx.send(&w, 1, 3, Bytes::from(vec![i]));
                }
            } else {
                for i in 0..10u8 {
                    let (data, _) = ctx.recv(&w, 0, 3);
                    assert_eq!(data[0], i, "messages must not overtake");
                }
            }
        });
    }

    #[test]
    fn any_source_any_tag() {
        run_world(cfg(3), |ctx| {
            let w = ctx.comm_world();
            if ctx.rank() == 0 {
                let mut seen = [false; 2];
                for _ in 0..2 {
                    let (_, st) = ctx.recv(&w, SrcSel::Any, TagSel::Any);
                    seen[st.source - 1] = true;
                }
                assert!(seen[0] && seen[1]);
            } else {
                ctx.send(&w, 0, ctx.rank() as Tag, Bytes::from_static(b"x"));
            }
        });
    }

    #[test]
    fn sendrecv_exchange() {
        run_world(cfg(2), |ctx| {
            let w = ctx.comm_world();
            let me = ctx.rank();
            let peer = 1 - me;
            let (data, _) = ctx.sendrecv(&w, peer, 1, Bytes::from(vec![me as u8]), peer, 1);
            assert_eq!(data[0], peer as u8);
        });
    }

    #[test]
    fn iprobe_sees_arrivals() {
        run_world(cfg(2), |ctx| {
            let w = ctx.comm_world();
            if ctx.rank() == 0 {
                ctx.send(&w, 1, 9, Bytes::from_static(b"abc"));
            } else {
                // Poll until the message is visible.
                let st = loop {
                    if let Some(st) = ctx.iprobe(&w, SrcSel::Any, TagSel::Any) {
                        break st;
                    }
                    ctx.park_briefly();
                };
                assert_eq!(st.tag, 9);
                assert_eq!(st.len, 3);
                // Probe does not consume.
                let (data, _) = ctx.recv(&w, 0, 9);
                assert_eq!(data.as_ref(), b"abc");
            }
        });
    }

    #[test]
    fn blocking_collectives_data() {
        run_world(cfg(4), |ctx| {
            let w = ctx.comm_world();
            let me = ctx.rank();
            // Bcast.
            let data = if me == 2 {
                Bytes::from_static(b"hello")
            } else {
                Bytes::new()
            };
            let out = ctx.bcast(&w, 2, data);
            assert_eq!(out.as_ref(), b"hello");
            // Allreduce.
            let s = ctx.allreduce_f64(&w, &[me as f64], ReduceOp::Sum);
            assert_eq!(s, vec![6.0]);
            // Alltoall: rank r sends byte r*4+j to rank j.
            let payload: Vec<u8> = (0..4).map(|j| (me * 4 + j) as u8).collect();
            let got = ctx.alltoall(&w, Bytes::from(payload));
            let expect: Vec<u8> = (0..4).map(|r| (r * 4 + me) as u8).collect();
            assert_eq!(got.as_ref(), &expect[..]);
            // Barrier synchronizes clocks upward.
            let before = ctx.clock();
            ctx.barrier(&w);
            assert!(ctx.clock() >= before);
        });
    }

    #[test]
    fn nonblocking_collective_overlap() {
        let rep = run_world(cfg(4), |ctx| {
            let w = ctx.comm_world();
            let mut req = ctx.iallreduce(&w, encode_f64(&[1.0]), DType::F64, ReduceOp::Sum);
            // Overlapped computation.
            ctx.compute(100e-6);
            let c = ctx.wait(&mut req);
            assert_eq!(decode_f64(&c.data), vec![4.0]);
            assert!(req.is_null());
            ctx.clock()
        });
        // With overlap, total time should be close to the compute time, not
        // compute + full collective latency.
        for r in &rep.ranks {
            assert!(r.result.as_secs() < 150e-6, "overlap failed: {}", r.result);
        }
    }

    #[test]
    fn ibarrier_test_loop() {
        // The 2PC "trivial barrier" pattern: Ibarrier + Test loop.
        run_world(cfg(3), |ctx| {
            let w = ctx.comm_world();
            let mut req = ctx.ibarrier(&w);
            let mut polls = 0u64;
            loop {
                if ctx.test(&mut req).is_some() {
                    break;
                }
                polls += 1;
                if polls.is_multiple_of(64) {
                    ctx.park_briefly();
                }
            }
            assert!(req.is_null());
        });
    }

    #[test]
    fn comm_split_even_odd() {
        run_world(cfg(6), |ctx| {
            let w = ctx.comm_world();
            let me = ctx.rank();
            let sub = ctx
                .comm_split(&w, (me % 2) as i64, me as i64)
                .expect("color >= 0");
            assert_eq!(sub.size(), 3);
            assert_eq!(sub.rank(), me / 2);
            // Sum within my parity class.
            let s = ctx.allreduce_f64(&sub, &[me as f64], ReduceOp::Sum);
            let expect = if me % 2 == 0 {
                0.0 + 2.0 + 4.0
            } else {
                1.0 + 3.0 + 5.0
            };
            assert_eq!(s, vec![expect]);
        });
    }

    #[test]
    fn comm_split_undefined_color() {
        run_world(cfg(4), |ctx| {
            let w = ctx.comm_world();
            let color = if ctx.rank() == 0 { -1 } else { 0 };
            let sub = ctx.comm_split(&w, color, 0);
            if ctx.rank() == 0 {
                assert!(sub.is_none());
            } else {
                assert_eq!(sub.unwrap().size(), 3);
            }
        });
    }

    #[test]
    fn comm_dup_independent_context() {
        run_world(cfg(2), |ctx| {
            let w = ctx.comm_world();
            let d = ctx.comm_dup(&w);
            assert_ne!(d.id(), w.id());
            assert!(d.group().identical(w.group()));
            // Message sent on dup must not match a recv on world.
            if ctx.rank() == 0 {
                ctx.send(&d, 1, 5, Bytes::from_static(b"dup"));
                ctx.send(&w, 1, 5, Bytes::from_static(b"world"));
            } else {
                let (data, _) = ctx.recv(&w, 0, 5);
                assert_eq!(data.as_ref(), b"world");
                let (data, _) = ctx.recv(&d, 0, 5);
                assert_eq!(data.as_ref(), b"dup");
            }
        });
    }

    #[test]
    fn comm_create_subset() {
        run_world(cfg(4), |ctx| {
            let w = ctx.comm_world();
            let g = Group::new(vec![1, 3]);
            let sub = ctx.comm_create(&w, &g);
            match ctx.rank() {
                1 | 3 => {
                    let c = sub.unwrap();
                    assert_eq!(c.size(), 2);
                    let s = ctx.allreduce_f64(&c, &[1.0], ReduceOp::Sum);
                    assert_eq!(s, vec![2.0]);
                }
                _ => assert!(sub.is_none()),
            }
        });
    }

    #[test]
    fn waitall_and_waitany() {
        run_world(cfg(2), |ctx| {
            let w = ctx.comm_world();
            if ctx.rank() == 0 {
                let mut reqs = vec![
                    ctx.isend(&w, 1, 1, Bytes::from_static(b"a")),
                    ctx.isend(&w, 1, 2, Bytes::from_static(b"b")),
                ];
                let cs = ctx.waitall(&mut reqs);
                assert_eq!(cs.len(), 2);
                assert!(reqs.iter().all(Request::is_null));
            } else {
                let mut reqs = vec![ctx.irecv(&w, 0, 1), ctx.irecv(&w, 0, 2)];
                let mut seen = 0;
                while let Some((i, c)) = ctx.waitany(&mut reqs) {
                    assert!(!c.data.is_empty());
                    assert!(reqs[i].is_null());
                    seen += 1;
                    if seen == 2 {
                        break;
                    }
                }
                assert_eq!(seen, 2);
            }
        });
    }

    #[test]
    fn collective_vtime_is_deterministic() {
        let run = || {
            run_world(cfg(8), |ctx| {
                let w = ctx.comm_world();
                for _ in 0..20 {
                    ctx.allreduce_f64(&w, &[1.0], ReduceOp::Sum);
                }
                ctx.clock()
            })
            .makespan
        };
        assert_eq!(run(), run(), "virtual time must be deterministic");
    }

    #[test]
    fn no_live_collectives_after_completion() {
        let w = std::sync::Arc::new(parking_lot::Mutex::new(None));
        let w2 = w.clone();
        run_world(cfg(4), move |ctx| {
            let world = ctx.world().clone();
            let c = ctx.comm_world();
            ctx.barrier(&c);
            ctx.allreduce_f64(&c, &[1.0], ReduceOp::Sum);
            *w2.lock() = Some(world);
        });
        let world = w.lock().take().unwrap();
        assert_eq!(world.live_collectives(), 0);
    }
}
