//! The `World`: all shared lower-half state, plus the thread launcher.
//!
//! In split-process terms (paper Figure 1) a `World` **is** the lower half:
//! mailboxes, communicator registry, and in-flight collective instances. At
//! restart the checkpoint engine discards the old `World` and attaches a
//! fresh one to the surviving rank threads ([`crate::Ctx::attach_world`]) —
//! nothing in here is ever saved in a checkpoint image.
//!
//! Rank execution is multiplexed by the batched cooperative
//! [`Scheduler`]: each rank owns a thread (its
//! continuation), but only `workers` ranks run at once — see
//! [`crate::sched`] for the contract. The scheduler outlives the `World`:
//! restart builds the next generation onto the same scheduler with
//! [`World::with_epoch_attached`].

use crate::collective::CollRegistry;
use crate::comm::{CommInner, SplitKey};
use crate::ctx::Ctx;
use crate::group::Group;
use crate::mailbox::Mailbox;
use crate::msg::InFlightMsg;
use crate::sched::Scheduler;
use crate::types::{CommId, COMM_WORLD_ID};
use netmodel::{NetParams, Topology, VTime};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for building a [`World`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of MPI ranks.
    pub n_ranks: usize,
    /// Ranks per simulated node (Perlmutter: 128).
    pub ranks_per_node: usize,
    /// Network cost parameters.
    pub params: NetParams,
    /// Stack size for rank threads spawned by [`run_world`].
    pub stack_size: usize,
    /// Concurrently-running rank bound for the cooperative scheduler;
    /// `None` sizes it to the host ([`Scheduler::default_workers`]).
    pub workers: Option<usize>,
}

impl WorldConfig {
    /// A config with `n` ranks on one node and the default network.
    pub fn single_node(n: usize) -> Self {
        WorldConfig {
            n_ranks: n,
            ranks_per_node: n.max(1),
            params: NetParams::default(),
            stack_size: 1 << 20,
            workers: None,
        }
    }

    /// A config with `n` ranks, `rpn` per node.
    pub fn multi_node(n: usize, rpn: usize) -> Self {
        WorldConfig {
            n_ranks: n,
            ranks_per_node: rpn,
            params: NetParams::default(),
            stack_size: 1 << 20,
            workers: None,
        }
    }

    /// Replaces the network parameters.
    pub fn with_params(mut self, params: NetParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the scheduler's concurrently-running rank bound.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "worker bound must be positive");
        self.workers = Some(workers);
        self
    }

    /// The resolved worker bound for this config.
    pub fn resolved_workers(&self) -> usize {
        self.workers
            .unwrap_or_else(Scheduler::default_workers)
            .min(self.n_ranks.max(1))
    }
}

/// Shared lower-half state for one generation of the simulated MPI library.
pub struct World {
    pub(crate) n_ranks: usize,
    pub(crate) topo: Topology,
    pub(crate) params: Arc<NetParams>,
    pub(crate) mailboxes: Vec<Arc<Mailbox>>,
    pub(crate) comms: RwLock<HashMap<CommId, Arc<CommInner>>>,
    pub(crate) split_registry: Mutex<HashMap<SplitKey, CommId>>,
    pub(crate) next_comm: AtomicU64,
    pub(crate) coll: CollRegistry,
    pub(crate) next_instance: AtomicU64,
    /// The cooperative rank scheduler. Shared across lower-half
    /// generations: restart replaces the `World`, never the scheduler.
    pub(crate) sched: Arc<Scheduler>,
    /// Lower-half generation: 0 for the initial world, incremented by the
    /// checkpoint engine at each restart.
    pub epoch: u64,
}

impl World {
    /// Builds a world (generation 0) with a fresh scheduler.
    pub fn new(cfg: WorldConfig) -> Arc<World> {
        Self::with_epoch(cfg, 0)
    }

    /// Builds a world with an explicit lower-half generation and a fresh
    /// scheduler.
    pub fn with_epoch(cfg: WorldConfig, epoch: u64) -> Arc<World> {
        let sched = Scheduler::new(cfg.n_ranks.max(1), cfg.resolved_workers());
        Self::with_epoch_attached(cfg, epoch, sched)
    }

    /// **Restart hook.** Builds a fresh lower half attached to an existing
    /// scheduler: the surviving rank threads keep their run slots and wake
    /// into the new generation.
    ///
    /// # Panics
    /// Panics if the scheduler was sized for a different rank count.
    pub fn with_epoch_attached(cfg: WorldConfig, epoch: u64, sched: Arc<Scheduler>) -> Arc<World> {
        assert!(cfg.n_ranks > 0, "world needs at least one rank");
        assert_eq!(
            sched.n_ranks(),
            cfg.n_ranks,
            "scheduler sized for a different world"
        );
        let topo = Topology::new(cfg.n_ranks, cfg.ranks_per_node);
        let mut comms = HashMap::new();
        comms.insert(
            COMM_WORLD_ID,
            Arc::new(CommInner {
                id: COMM_WORLD_ID,
                group: Group::world(cfg.n_ranks),
                epoch,
            }),
        );
        Arc::new(World {
            n_ranks: cfg.n_ranks,
            topo,
            params: Arc::new(cfg.params),
            mailboxes: (0..cfg.n_ranks).map(|_| Arc::new(Mailbox::new())).collect(),
            comms: RwLock::new(comms),
            split_registry: Mutex::new(HashMap::new()),
            next_comm: AtomicU64::new(1),
            coll: CollRegistry::new(),
            next_instance: AtomicU64::new(1),
            sched,
            epoch,
        })
    }

    /// The cooperative rank scheduler this world's ranks run under.
    #[inline]
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Number of ranks.
    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// The topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Network parameters.
    #[inline]
    pub fn params(&self) -> &Arc<NetParams> {
        &self.params
    }

    /// The mailbox of `rank`.
    #[inline]
    pub(crate) fn mailbox(&self, rank: usize) -> &Mailbox {
        &self.mailboxes[rank]
    }

    /// Looks up a communicator by id.
    ///
    /// # Panics
    /// Panics if the id is unknown (stale handle from an old generation).
    pub fn comm_inner(&self, id: CommId) -> Arc<CommInner> {
        Arc::clone(
            self.comms
                .read()
                .get(&id)
                .unwrap_or_else(|| panic!("unknown communicator {id:?} (stale handle?)")),
        )
    }

    /// Registers a new communicator for `group`; allocated under `key` so
    /// that all participants of the creating collective agree on the id.
    pub(crate) fn comm_for_split(&self, key: SplitKey, group: Group) -> Arc<CommInner> {
        let mut reg = self.split_registry.lock();
        let id = *reg
            .entry(key)
            .or_insert_with(|| CommId(self.next_comm.fetch_add(1, Ordering::Relaxed)));
        drop(reg);
        let mut comms = self.comms.write();
        let inner = comms.entry(id).or_insert_with(|| {
            Arc::new(CommInner {
                id,
                group,
                epoch: self.epoch,
            })
        });
        Arc::clone(inner)
    }

    /// **Restart hook.** Rebuilds a communicator directly from its saved
    /// group, without running a creation collective. Member ranks replaying
    /// a checkpointed communicator log call this with identical `key`s and
    /// get the same registered communicator — no rendezvous is needed, so
    /// replay also works when some original members have already finished.
    pub fn restore_comm(&self, key: SplitKey, group: Group) -> Arc<CommInner> {
        self.comm_for_split(key, group)
    }

    /// Frees a communicator handle (`MPI_Comm_free`). World itself cannot
    /// be freed.
    pub fn free_comm(&self, id: CommId) {
        assert_ne!(id, COMM_WORLD_ID, "cannot free MPI_COMM_WORLD");
        self.comms.write().remove(&id);
    }

    /// Allocates a globally unique collective-instance id (jitter key).
    pub(crate) fn alloc_instance(&self) -> u64 {
        self.next_instance.fetch_add(1, Ordering::Relaxed)
    }

    /// **Checkpoint hook.** Drains every unmatched in-flight message from
    /// `rank`'s mailbox. At a safe state these are exactly the sent-but-not-
    /// received point-to-point messages that must be saved in the image.
    pub fn take_unexpected(&self, rank: usize) -> Vec<InFlightMsg> {
        self.mailboxes[rank].drain_all()
    }

    /// **Restart hook.** Re-deposits a message drained from a previous
    /// generation (arrival time is immediate: the data is already local).
    pub fn deposit_raw(&self, mut msg: InFlightMsg, now: VTime) {
        msg.arrival = now;
        msg.sent = now;
        let dst = msg.dst_world;
        self.mailboxes[dst].deposit(msg);
    }

    /// Number of collective instances currently in flight. The paper's
    /// *collective invariant* (§2.2) requires this to be zero at any safe
    /// state; the checkpoint engine asserts it.
    pub fn live_collectives(&self) -> usize {
        self.coll.live_count()
    }

    /// Arrival progress of a collective instance `(entered, size)`; `None`
    /// if the instance does not exist (not started, or fully retired).
    pub fn collective_progress(&self, comm: CommId, seq: u64) -> Option<(usize, usize)> {
        self.coll.progress((comm, seq))
    }

    /// Non-destructive snapshot of a rank's unmatched in-flight messages
    /// (checkpoint *continue* path: the image gets a copy, the mailbox
    /// keeps the originals).
    pub fn snapshot_unexpected(&self, rank: usize) -> Vec<InFlightMsg> {
        self.mailboxes[rank].snapshot_all()
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("n_ranks", &self.n_ranks)
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// Result of one rank's run under [`run_world`].
#[derive(Debug)]
pub struct RankReport<R> {
    /// World rank.
    pub rank: usize,
    /// The closure's return value.
    pub result: R,
    /// The rank's final virtual clock.
    pub final_clock: VTime,
}

/// Result of a whole [`run_world`] execution.
#[derive(Debug)]
pub struct WorldReport<R> {
    /// Per-rank reports, indexed by rank.
    pub ranks: Vec<RankReport<R>>,
    /// The simulated makespan: max of final clocks.
    pub makespan: VTime,
}

impl<R> WorldReport<R> {
    /// Iterates over per-rank results.
    pub fn results(&self) -> impl Iterator<Item = &R> {
        self.ranks.iter().map(|r| &r.result)
    }
}

/// Spawns one thread per rank (a parked continuation under the cooperative
/// scheduler), runs `f` on each, and reports results and virtual-time
/// makespan. At most [`WorldConfig::workers`] ranks execute concurrently.
/// Panics in any rank propagate; the panicking rank's run slot is released
/// first so its peers are not starved while they run down.
pub fn run_world<R, F>(cfg: WorldConfig, f: F) -> WorldReport<R>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    let world = World::new(cfg.clone());
    let mut reports: Vec<Option<RankReport<R>>> = (0..cfg.n_ranks).map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.n_ranks);
        for rank in 0..cfg.n_ranks {
            let world = Arc::clone(&world);
            let f = &f;
            let h = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(cfg.stack_size)
                .spawn_scoped(s, move || {
                    let sched = Arc::clone(world.scheduler());
                    sched.attach(rank);
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut ctx = Ctx::new(world, rank);
                        let result = f(&mut ctx);
                        RankReport {
                            rank,
                            result,
                            final_clock: ctx.clock(),
                        }
                    }));
                    sched.detach(rank);
                    match out {
                        Ok(rep) => rep,
                        Err(p) => std::panic::resume_unwind(p),
                    }
                })
                .expect("failed to spawn rank thread");
            handles.push(h);
        }
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(rep) => reports[rank] = Some(rep),
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    let ranks: Vec<RankReport<R>> = reports.into_iter().map(|r| r.unwrap()).collect();
    let makespan = VTime::max_of(ranks.iter().map(|r| r.final_clock));
    WorldReport { ranks, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_has_comm_world() {
        let w = World::new(WorldConfig::single_node(4));
        let c = w.comm_inner(COMM_WORLD_ID);
        assert_eq!(c.group.size(), 4);
        assert_eq!(w.live_collectives(), 0);
    }

    #[test]
    fn split_registry_agrees_on_id() {
        let w = World::new(WorldConfig::single_node(4));
        let key = SplitKey {
            parent: COMM_WORLD_ID,
            seq: 0,
            color: 1,
        };
        let g = Group::new(vec![0, 1]);
        let a = w.comm_for_split(key.clone(), g.clone());
        let b = w.comm_for_split(key, g);
        assert_eq!(a.id, b.id);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "cannot free MPI_COMM_WORLD")]
    fn freeing_world_comm_panics() {
        let w = World::new(WorldConfig::single_node(2));
        w.free_comm(COMM_WORLD_ID);
    }

    #[test]
    fn run_world_reports_results() {
        let rep = run_world(WorldConfig::single_node(3), |ctx| ctx.rank() * 10);
        assert_eq!(rep.ranks.len(), 3);
        assert_eq!(rep.ranks[2].result, 20);
    }
}
