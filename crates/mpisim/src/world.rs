//! The `World`: all shared lower-half state, plus the thread launcher.
//!
//! In split-process terms (paper Figure 1) a `World` **is** the lower half:
//! mailboxes, communicator registry, and in-flight collective instances. At
//! restart the checkpoint engine discards the old `World` and attaches a
//! fresh one to the surviving rank threads ([`crate::Ctx::attach_world`]) —
//! nothing in here is ever saved in a checkpoint image.
//!
//! Rank execution is multiplexed by the batched cooperative
//! [`Scheduler`]: each rank owns a thread (its
//! continuation), but only `workers` ranks run at once — see
//! [`crate::sched`] for the contract. The scheduler outlives the `World`:
//! restart builds the next generation onto the same scheduler with
//! [`World::with_epoch_attached`].

use crate::collective::{CollRegistry, InstanceEnv};
use crate::comm::{CommInner, SplitKey};
use crate::ctx::Ctx;
use crate::group::Group;
use crate::mailbox::Mailbox;
use crate::msg::InFlightMsg;
use crate::sched::Scheduler;
use crate::types::{CommId, COMM_WORLD_ID};
use netmodel::{NetParams, Topology, VTime};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default stack size for rank threads, shared by every runner
/// ([`run_world`], the checkpoint runners, restore replay).
///
/// Rank bodies are shallow — MPI-style call chains plus the wrapper layer,
/// no deep recursion — and a debug build of the full test battery peaks
/// well under 64 KiB of stack per rank, so 128 KiB carries 2× headroom.
/// The old 1 MiB-per-thread default was the scale blocker the ROADMAP
/// called out: stacks are the *only* per-rank footprint that survives
/// parking, and at 4096 parked continuations 1 MiB apiece is 4 GiB of
/// committed-on-touch memory for stacks alone, vs 512 MiB here.
pub const DEFAULT_RANK_STACK: usize = 128 << 10;

/// Configuration for building a [`World`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Number of MPI ranks.
    pub n_ranks: usize,
    /// Ranks per simulated node (Perlmutter: 128).
    pub ranks_per_node: usize,
    /// Network cost parameters.
    pub params: NetParams,
    /// Stack size for rank threads spawned by [`run_world`]
    /// ([`DEFAULT_RANK_STACK`] unless overridden — rank bodies with deep
    /// recursion should raise it via [`WorldConfig::with_stack_size`]).
    pub stack_size: usize,
    /// Concurrently-running rank bound for the cooperative scheduler;
    /// `None` sizes it to the host ([`Scheduler::default_workers`]).
    pub workers: Option<usize>,
}

impl WorldConfig {
    /// A config with `n` ranks on one node and the default network.
    pub fn single_node(n: usize) -> Self {
        WorldConfig {
            n_ranks: n,
            ranks_per_node: n.max(1),
            params: NetParams::default(),
            stack_size: DEFAULT_RANK_STACK,
            workers: None,
        }
    }

    /// A config with `n` ranks, `rpn` per node.
    pub fn multi_node(n: usize, rpn: usize) -> Self {
        WorldConfig {
            n_ranks: n,
            ranks_per_node: rpn,
            params: NetParams::default(),
            stack_size: DEFAULT_RANK_STACK,
            workers: None,
        }
    }

    /// Replaces the network parameters.
    pub fn with_params(mut self, params: NetParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the per-rank thread stack size.
    ///
    /// **Closure-shim only.** Step-function ranks (see [`crate::sched`]'s
    /// step-driver section) have no per-rank stack — their continuation is
    /// a heap object — so this knob is meaningless there, and the step
    /// runners reject a non-default value with a typed error rather than
    /// silently ignoring it.
    pub fn with_stack_size(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "stack size must be positive");
        self.stack_size = bytes;
        self
    }

    /// Overrides the scheduler's concurrently-running rank bound.
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "worker bound must be positive");
        self.workers = Some(workers);
        self
    }

    /// The resolved worker bound for this config.
    pub fn resolved_workers(&self) -> usize {
        self.workers
            .unwrap_or_else(Scheduler::default_workers)
            .min(self.n_ranks.max(1))
    }
}

/// Shared lower-half state for one generation of the simulated MPI library.
pub struct World {
    pub(crate) n_ranks: usize,
    pub(crate) topo: Topology,
    pub(crate) params: Arc<NetParams>,
    pub(crate) mailboxes: Vec<Arc<Mailbox>>,
    pub(crate) comms: RwLock<HashMap<CommId, Arc<CommInner>>>,
    pub(crate) split_registry: Mutex<HashMap<SplitKey, CommId>>,
    pub(crate) next_comm: AtomicU64,
    pub(crate) coll: CollRegistry,
    pub(crate) next_instance: AtomicU64,
    /// Messages the checkpoint coordinator injected into this generation
    /// from outside any rank's send path (restart seeding, post-capture
    /// continue re-deposits). Part of the p2p drain-accounting identity —
    /// see [`World::p2p_accounting`].
    redeposited: AtomicU64,
    /// Messages removed from mailboxes by checkpoint drains
    /// ([`World::take_unexpected`]) over this generation's lifetime.
    drained: AtomicU64,
    /// The cooperative rank scheduler. Shared across lower-half
    /// generations: restart replaces the `World`, never the scheduler.
    pub(crate) sched: Arc<Scheduler>,
    /// Lower-half generation: 0 for the initial world, incremented by the
    /// checkpoint engine at each restart.
    pub epoch: u64,
}

impl World {
    /// Builds a world (generation 0) with a fresh scheduler.
    pub fn new(cfg: WorldConfig) -> Arc<World> {
        Self::with_epoch(cfg, 0)
    }

    /// Builds a world with an explicit lower-half generation and a fresh
    /// scheduler.
    pub fn with_epoch(cfg: WorldConfig, epoch: u64) -> Arc<World> {
        let sched = Scheduler::new(cfg.n_ranks.max(1), cfg.resolved_workers());
        Self::with_epoch_attached(cfg, epoch, sched)
    }

    /// **Restart hook.** Builds a fresh lower half attached to an existing
    /// scheduler: the surviving rank threads keep their run slots and wake
    /// into the new generation.
    ///
    /// # Panics
    /// Panics if the scheduler was sized for a different rank count.
    pub fn with_epoch_attached(cfg: WorldConfig, epoch: u64, sched: Arc<Scheduler>) -> Arc<World> {
        assert!(cfg.n_ranks > 0, "world needs at least one rank");
        assert_eq!(
            sched.n_ranks(),
            cfg.n_ranks,
            "scheduler sized for a different world"
        );
        let topo = Topology::new(cfg.n_ranks, cfg.ranks_per_node);
        let mut comms = HashMap::new();
        comms.insert(
            COMM_WORLD_ID,
            Arc::new(CommInner {
                id: COMM_WORLD_ID,
                group: Group::world(cfg.n_ranks),
                epoch,
            }),
        );
        let mailboxes: Vec<Arc<Mailbox>> = (0..cfg.n_ranks)
            .map(|rank| {
                let mb = Arc::new(Mailbox::new());
                // Step-mode worlds route mailbox activity to the rank's
                // step driver. The registry is per-scheduler, so restart
                // generations built onto the same scheduler re-wire their
                // fresh mailboxes automatically.
                if let Some(w) = sched.step_waker_for(rank) {
                    mb.set_waker(w);
                }
                mb
            })
            .collect();
        Arc::new(World {
            n_ranks: cfg.n_ranks,
            topo,
            params: Arc::new(cfg.params),
            mailboxes,
            comms: RwLock::new(comms),
            split_registry: Mutex::new(HashMap::new()),
            next_comm: AtomicU64::new(1),
            coll: CollRegistry::new(),
            next_instance: AtomicU64::new(1),
            redeposited: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            sched,
            epoch,
        })
    }

    /// The environment a [`crate::collective::CollInstance`] for `group`
    /// needs: cost-model inputs, the participants' mailboxes (poked at
    /// completion), and the scheduler's run-slot count as the completion
    /// wakeup batch size.
    pub(crate) fn instance_env(&self, group: &Group) -> InstanceEnv {
        InstanceEnv {
            params: Arc::clone(&self.params),
            topo: self.topo.clone(),
            mailboxes: group
                .members()
                .iter()
                .map(|&w| Arc::clone(&self.mailboxes[w]))
                .collect(),
            wake_batch: self.sched.workers(),
            fail: Arc::clone(self.sched.fail_plane()),
        }
    }

    /// The fault-propagation plane shared by every generation built on
    /// this world's scheduler. See [`crate::fail`].
    #[inline]
    pub fn fail_plane(&self) -> &Arc<crate::fail::FailPlane> {
        self.sched.fail_plane()
    }

    /// Poison broadcast for this lower half: after a fault injector
    /// publishes a death on the fail plane, this wakes every sleeper that
    /// parks on lower-half state — mailbox activity waits (receive parks,
    /// `park_briefly`, step-rank wakers route through the mailbox waker)
    /// and collective-instance condvars — so they observe the poison and
    /// unwind promptly. Checkpoint-control parks live above this crate and
    /// are woken by the caller.
    pub fn poison_wake(&self) {
        for mb in &self.mailboxes {
            mb.notify_activity();
        }
        self.coll.poison_wake_all();
    }

    /// The cooperative rank scheduler this world's ranks run under.
    #[inline]
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.sched
    }

    /// Number of ranks.
    #[inline]
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }

    /// The topology.
    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Network parameters.
    #[inline]
    pub fn params(&self) -> &Arc<NetParams> {
        &self.params
    }

    /// The mailbox of `rank`.
    #[inline]
    pub(crate) fn mailbox(&self, rank: usize) -> &Mailbox {
        &self.mailboxes[rank]
    }

    /// Wires every mailbox to the scheduler's step-waker registry.
    ///
    /// Worlds built *after* [`Scheduler::install_step_waker`] (restart
    /// generations through [`World::with_epoch_attached`]) get this wiring
    /// automatically; a step runner calls it on the initial world, which
    /// necessarily predates its driver.
    pub fn install_step_wakers(&self) {
        for (rank, mb) in self.mailboxes.iter().enumerate() {
            if let Some(w) = self.sched.step_waker_for(rank) {
                mb.set_waker(w);
            }
        }
    }

    /// Looks up a communicator by id.
    ///
    /// # Panics
    /// Panics if the id is unknown (stale handle from an old generation).
    pub fn comm_inner(&self, id: CommId) -> Arc<CommInner> {
        Arc::clone(
            self.comms
                .read()
                .get(&id)
                .unwrap_or_else(|| panic!("unknown communicator {id:?} (stale handle?)")),
        )
    }

    /// Registers a new communicator for `group`; allocated under `key` so
    /// that all participants of the creating collective agree on the id.
    pub(crate) fn comm_for_split(&self, key: SplitKey, group: Group) -> Arc<CommInner> {
        let mut reg = self.split_registry.lock();
        let id = *reg
            .entry(key)
            .or_insert_with(|| CommId(self.next_comm.fetch_add(1, Ordering::Relaxed)));
        drop(reg);
        let mut comms = self.comms.write();
        let inner = comms.entry(id).or_insert_with(|| {
            Arc::new(CommInner {
                id,
                group,
                epoch: self.epoch,
            })
        });
        Arc::clone(inner)
    }

    /// **Restart hook.** Rebuilds a communicator directly from its saved
    /// group, without running a creation collective. Member ranks replaying
    /// a checkpointed communicator log call this with identical `key`s and
    /// get the same registered communicator — no rendezvous is needed, so
    /// replay also works when some original members have already finished.
    pub fn restore_comm(&self, key: SplitKey, group: Group) -> Arc<CommInner> {
        self.comm_for_split(key, group)
    }

    /// Frees a communicator handle (`MPI_Comm_free`). World itself cannot
    /// be freed.
    pub fn free_comm(&self, id: CommId) {
        assert_ne!(id, COMM_WORLD_ID, "cannot free MPI_COMM_WORLD");
        self.comms.write().remove(&id);
    }

    /// Allocates a globally unique collective-instance id (jitter key).
    pub(crate) fn alloc_instance(&self) -> u64 {
        self.next_instance.fetch_add(1, Ordering::Relaxed)
    }

    /// **Checkpoint hook.** Drains every unmatched in-flight message from
    /// `rank`'s mailbox. At a safe state these are exactly the sent-but-not-
    /// received point-to-point messages that must be saved in the image.
    pub fn take_unexpected(&self, rank: usize) -> Vec<InFlightMsg> {
        let msgs = self.mailboxes[rank].drain_all();
        self.drained.fetch_add(msgs.len() as u64, Ordering::Relaxed);
        msgs
    }

    /// **Restart hook.** Re-deposits a message drained from a previous
    /// generation (arrival time is immediate: the data is already local).
    /// Counted as an external injection for the p2p drain accounting.
    pub fn deposit_raw(&self, msg: InFlightMsg, now: VTime) {
        self.redeposited.fetch_add(1, Ordering::Relaxed);
        self.revert_unmatched(msg, now);
    }

    /// **Quiesce hook.** Returns a matched-but-uncompleted receive's
    /// message to its destination mailbox so the capture drain records it
    /// as in flight. Unlike [`World::deposit_raw`] this is *not* counted
    /// as an external injection: the rank-side send counter already covers
    /// the message, and the revert merely moves it from a request's
    /// matched state back into the queue it came from.
    pub fn revert_unmatched(&self, mut msg: InFlightMsg, now: VTime) {
        msg.arrival = now;
        msg.sent = now;
        let dst = msg.dst_world;
        self.mailboxes[dst].deposit(msg);
    }

    /// The lower-half side of the p2p drain-accounting identity for this
    /// generation: `(redeposited, drained)` — messages the coordinator
    /// injected from outside any rank's send path, and messages checkpoint
    /// drains removed. At any quiesced point with no matched-but-
    /// uncompleted receives outstanding,
    ///
    /// ```text
    /// Σ rank sends + redeposited == Σ rank deliveries + queued + drained
    /// ```
    ///
    /// must hold, where `queued` is what [`World::take_unexpected`] finds.
    /// The checkpoint coordinator enforces exactly this at every capture.
    pub fn p2p_accounting(&self) -> (u64, u64) {
        (
            self.redeposited.load(Ordering::Relaxed),
            self.drained.load(Ordering::Relaxed),
        )
    }

    /// Number of collective instances currently in flight. The paper's
    /// *collective invariant* (§2.2) requires this to be zero at any safe
    /// state; the checkpoint engine asserts it.
    pub fn live_collectives(&self) -> usize {
        self.coll.live_count()
    }

    /// Arrival progress of a collective instance `(entered, size)`; `None`
    /// if the instance does not exist (not started, or fully retired).
    pub fn collective_progress(&self, comm: CommId, seq: u64) -> Option<(usize, usize)> {
        self.coll.progress((comm, seq))
    }

    /// Non-destructive snapshot of a rank's unmatched in-flight messages
    /// (checkpoint *continue* path: the image gets a copy, the mailbox
    /// keeps the originals).
    pub fn snapshot_unexpected(&self, rank: usize) -> Vec<InFlightMsg> {
        self.mailboxes[rank].snapshot_all()
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("n_ranks", &self.n_ranks)
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// Result of one rank's run under [`run_world`].
#[derive(Debug)]
pub struct RankReport<R> {
    /// World rank.
    pub rank: usize,
    /// The closure's return value.
    pub result: R,
    /// The rank's final virtual clock.
    pub final_clock: VTime,
}

/// Result of a whole [`run_world`] execution.
#[derive(Debug)]
pub struct WorldReport<R> {
    /// Per-rank reports, indexed by rank.
    pub ranks: Vec<RankReport<R>>,
    /// The simulated makespan: max of final clocks.
    pub makespan: VTime,
}

impl<R> WorldReport<R> {
    /// Iterates over per-rank results.
    pub fn results(&self) -> impl Iterator<Item = &R> {
        self.ranks.iter().map(|r| &r.result)
    }
}

/// Spawning a rank thread failed (out of memory or a process thread
/// limit). Before any rank runs application code, every rank thread of a
/// world must exist — so the runner aborts the whole launch cleanly: ranks
/// spawned before the failure are released without ever entering `f`, and
/// the typed error reports what was being asked of the host. At 4096
/// ranks this is an expected operational failure mode, not a programmer
/// error, which is why it is not an `expect` panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnError {
    /// Rank whose thread failed to spawn.
    pub rank: usize,
    /// Total ranks the launch asked for.
    pub n_ranks: usize,
    /// Per-thread stack size requested (bytes).
    pub stack_size: usize,
    /// The OS error.
    pub reason: String,
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "failed to spawn rank thread {}/{} ({} KiB stack each): {}",
            self.rank,
            self.n_ranks,
            self.stack_size >> 10,
            self.reason
        )
    }
}

impl std::error::Error for SpawnError {}

/// The all-or-nothing launch gate shared by every rank runner: rank
/// threads block on it before touching the scheduler or application code,
/// and the spawning thread releases them only once *every* spawn
/// succeeded. On a spawn failure the gate aborts instead — already-spawned
/// ranks return immediately (they would otherwise block forever in
/// collectives waiting for peers that never came up) and the launcher
/// reports a typed [`SpawnError`].
#[derive(Default)]
pub struct LaunchGate {
    decision: Mutex<Option<bool>>,
    cv: parking_lot::Condvar,
}

impl LaunchGate {
    /// A fresh, undecided gate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rank side: blocks until the launch is decided; `true` = go.
    pub fn wait(&self) -> bool {
        let mut d = self.decision.lock();
        loop {
            if let Some(go) = *d {
                return go;
            }
            self.cv.wait(&mut d);
        }
    }

    /// Launcher side: releases every rank (`go`) or aborts the launch.
    pub fn decide(&self, go: bool) {
        *self.decision.lock() = Some(go);
        self.cv.notify_all();
    }
}

/// Spawns one thread per rank (a parked continuation under the cooperative
/// scheduler), runs `f` on each, and reports results and virtual-time
/// makespan. At most [`WorldConfig::workers`] ranks execute concurrently.
/// Panics in any rank propagate; the panicking rank's run slot is released
/// first so its peers are not starved while they run down.
///
/// # Panics
/// Panics if a rank thread cannot be spawned; [`try_run_world`] surfaces
/// that case as a typed [`SpawnError`] instead.
pub fn run_world<R, F>(cfg: WorldConfig, f: F) -> WorldReport<R>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    try_run_world(cfg, f).unwrap_or_else(|e| panic!("{e}"))
}

/// [`run_world`], with thread-spawn failure surfaced as a typed
/// [`SpawnError`]: no application code has run when it is returned — ranks
/// spawned before the failing one are aborted through the launch gate
/// before they attach to the scheduler.
pub fn try_run_world<R, F>(cfg: WorldConfig, f: F) -> Result<WorldReport<R>, SpawnError>
where
    R: Send,
    F: Fn(&mut Ctx) -> R + Send + Sync,
{
    let world = World::new(cfg.clone());
    let gate = Arc::new(LaunchGate::new());
    let mut reports: Vec<Option<RankReport<R>>> = (0..cfg.n_ranks).map(|_| None).collect();
    let mut spawn_err = None;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(cfg.n_ranks);
        for rank in 0..cfg.n_ranks {
            let world = Arc::clone(&world);
            let gate = Arc::clone(&gate);
            let f = &f;
            let spawned = std::thread::Builder::new()
                .name(format!("rank-{rank}"))
                .stack_size(cfg.stack_size)
                .spawn_scoped(s, move || {
                    if !gate.wait() {
                        return None; // aborted launch: never ran `f`
                    }
                    let sched = Arc::clone(world.scheduler());
                    sched.attach(rank);
                    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut ctx = Ctx::new(world, rank);
                        let result = f(&mut ctx);
                        RankReport {
                            rank,
                            result,
                            final_clock: ctx.clock(),
                        }
                    }));
                    sched.detach(rank);
                    match out {
                        Ok(rep) => Some(rep),
                        Err(p) => std::panic::resume_unwind(p),
                    }
                });
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    spawn_err = Some(SpawnError {
                        rank,
                        n_ranks: cfg.n_ranks,
                        stack_size: cfg.stack_size,
                        reason: e.to_string(),
                    });
                    break;
                }
            }
        }
        gate.decide(spawn_err.is_none());
        for (rank, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(rep) => reports[rank] = rep,
                Err(p) => std::panic::resume_unwind(p),
            }
        }
    });
    if let Some(e) = spawn_err {
        return Err(e);
    }
    let ranks: Vec<RankReport<R>> = reports.into_iter().map(|r| r.unwrap()).collect();
    let makespan = VTime::max_of(ranks.iter().map(|r| r.final_clock));
    Ok(WorldReport { ranks, makespan })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_has_comm_world() {
        let w = World::new(WorldConfig::single_node(4));
        let c = w.comm_inner(COMM_WORLD_ID);
        assert_eq!(c.group.size(), 4);
        assert_eq!(w.live_collectives(), 0);
    }

    #[test]
    fn split_registry_agrees_on_id() {
        let w = World::new(WorldConfig::single_node(4));
        let key = SplitKey {
            parent: COMM_WORLD_ID,
            seq: 0,
            color: 1,
        };
        let g = Group::new(vec![0, 1]);
        let a = w.comm_for_split(key.clone(), g.clone());
        let b = w.comm_for_split(key, g);
        assert_eq!(a.id, b.id);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "cannot free MPI_COMM_WORLD")]
    fn freeing_world_comm_panics() {
        let w = World::new(WorldConfig::single_node(2));
        w.free_comm(COMM_WORLD_ID);
    }

    #[test]
    fn run_world_reports_results() {
        let rep = run_world(WorldConfig::single_node(3), |ctx| ctx.rank() * 10);
        assert_eq!(rep.ranks.len(), 3);
        assert_eq!(rep.ranks[2].result, 20);
    }
}
