//! Message and status types for the point-to-point engine.

use crate::types::{CommId, Tag};
use bytes::Bytes;
use netmodel::VTime;

/// A message sitting in a destination mailbox, not yet matched by a receive.
#[derive(Debug, Clone)]
pub struct InFlightMsg {
    /// Sender's world rank.
    pub src_world: usize,
    /// Destination world rank (the mailbox owner).
    pub dst_world: usize,
    /// Communicator the message was sent on (lower-half handle).
    pub comm: CommId,
    /// Application tag.
    pub tag: Tag,
    /// Payload bytes.
    pub payload: Bytes,
    /// Virtual time at which the sender finished injecting the message.
    pub sent: VTime,
    /// Virtual time at which the message is available at the destination.
    pub arrival: VTime,
    /// Per-(src → dst) monotone sequence number; enforces the MPI
    /// non-overtaking rule inside the mailbox.
    pub seq: u64,
}

/// Completion status, as in `MPI_Status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Source rank *within the communicator's group*.
    pub source: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload length in bytes (`MPI_Get_count` with `MPI_BYTE`).
    pub len: usize,
}

/// A drained in-flight message, expressed in restart-stable terms: the
/// communicator is identified by the *virtual* id assigned by `mana-core`
/// (lower-half `CommId`s do not survive restart).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SavedMsg {
    /// Sender's world rank.
    pub src_world: usize,
    /// Destination world rank.
    pub dst_world: usize,
    /// Virtualized communicator id (stable across restart).
    pub vcomm: u64,
    /// Application tag.
    pub tag: Tag,
    /// Payload.
    pub payload: Bytes,
    /// Original per-channel sequence number (preserves ordering on re-post).
    pub seq: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saved_msg_round_fields() {
        let m = SavedMsg {
            src_world: 1,
            dst_world: 2,
            vcomm: 7,
            tag: 9,
            payload: Bytes::from_static(b"hi"),
            seq: 3,
        };
        assert_eq!(m.payload.as_ref(), b"hi");
        assert_eq!(m.vcomm, 7);
    }
}
