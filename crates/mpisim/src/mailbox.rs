//! Per-rank mailbox: the unexpected-message queue and its matching rules.
//!
//! Senders deposit messages directly into the destination's mailbox (eager
//! protocol); receivers scan for matches. MPI's **non-overtaking rule** —
//! messages between the same (sender, communicator) pair with matching tags
//! must be received in send order — is guaranteed by matching in deposit
//! order per sender: each sender thread deposits its own sends in program
//! order, so a front-to-back scan that picks the *first* match can never
//! reorder a sender's stream.

use crate::group::Group;
use crate::msg::InFlightMsg;
use crate::types::{CommId, SrcSel, TagSel};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// The matching criteria of a receive or probe.
#[derive(Debug, Clone, Copy)]
pub struct MatchSpec<'a> {
    /// Communicator to match on.
    pub comm: CommId,
    /// The communicator's group (to translate world→group ranks).
    pub group: &'a Group,
    /// Source selector (group ranks).
    pub src: SrcSel,
    /// Tag selector.
    pub tag: TagSel,
}

impl MatchSpec<'_> {
    /// Whether `msg` satisfies this spec; returns the source group rank.
    pub fn matches(&self, msg: &InFlightMsg) -> Option<usize> {
        if msg.comm != self.comm {
            return None;
        }
        let src_group = self.group.group_rank_of_world(msg.src_world)?;
        if self.src.matches(src_group) && self.tag.matches(msg.tag) {
            Some(src_group)
        } else {
            None
        }
    }
}

/// A rank's mailbox: arrival-ordered unexpected queue plus a condition
/// variable for blocking receivers.
#[derive(Default)]
pub struct Mailbox {
    inner: Mutex<Vec<InFlightMsg>>,
    cv: Condvar,
    /// Monotone count of deposits, for "did anything change" polling.
    generation: Mutex<u64>,
    /// Step-mode wake hook: invoked on every [`Mailbox::notify_activity`]
    /// so a parked step rank learns about deposits and collective
    /// completions through its driver instead of a condition variable.
    /// `None` for thread-representation worlds.
    waker: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for Mailbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailbox")
            .field("queued", &self.len())
            .field("has_waker", &self.waker.lock().is_some())
            .finish()
    }
}

impl Mailbox {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deposits a message (called by the *sender's* thread) and wakes any
    /// blocked receiver.
    pub fn deposit(&self, msg: InFlightMsg) {
        {
            let mut q = self.inner.lock();
            q.push(msg);
        }
        self.notify_activity();
    }

    /// Records mailbox-visible activity without depositing a message and
    /// wakes every waiter. Used by the collective engine at instance
    /// completion: pollers blocked in activity waits (`park_briefly`, the
    /// checkpoint layer's `Test` loops) learn about collective completions
    /// the same way they learn about deposits, so those waits stay
    /// event-driven instead of timing out.
    pub fn notify_activity(&self) {
        *self.generation.lock() += 1;
        self.cv.notify_all();
        let waker = self.waker.lock().clone();
        if let Some(w) = waker {
            w();
        }
    }

    /// Installs the step-mode waker invoked on every activity
    /// notification. Wired by the world constructor from the scheduler's
    /// step-waker registry; thread-representation worlds never set it.
    pub fn set_waker(&self, w: Arc<dyn Fn() + Send + Sync>) {
        *self.waker.lock() = Some(w);
    }

    /// Removes and returns the first message matching `spec`, if any.
    pub fn take_match(&self, spec: &MatchSpec<'_>) -> Option<InFlightMsg> {
        let mut q = self.inner.lock();
        let idx = q.iter().position(|m| spec.matches(m).is_some())?;
        Some(q.remove(idx))
    }

    /// Peeks at the first match without removing it (for `MPI_Iprobe`):
    /// returns `(source group rank, tag, len, arrival)`.
    pub fn peek_match(
        &self,
        spec: &MatchSpec<'_>,
    ) -> Option<(usize, crate::types::Tag, usize, netmodel::VTime)> {
        let q = self.inner.lock();
        q.iter().find_map(|m| {
            spec.matches(m)
                .map(|src| (src, m.tag, m.payload.len(), m.arrival))
        })
    }

    /// Snapshot of the deposit counter, for race-free waiting: take the
    /// token *before* scanning the queue, then pass it to
    /// [`Mailbox::wait_activity_since`] — a deposit landing between the
    /// scan and the wait bumps the counter and the wait returns at once.
    pub fn activity_token(&self) -> u64 {
        *self.generation.lock()
    }

    /// Blocks the calling thread until activity lands after `token` was
    /// taken, or `timeout` elapses. Event-driven: activity that raced the
    /// caller's queue scan is detected through the token and never costs
    /// the timeout. Returns `true` if activity was observed (before or
    /// during the wait), `false` if the wait expired with the generation
    /// unchanged — callers treating `timeout` as a lost-wakeup backstop
    /// use the `false` case to record a backstop-expiry wakeup.
    pub fn wait_activity_since(&self, token: u64, timeout: Duration) -> bool {
        let mut gen = self.generation.lock();
        if *gen != token {
            return true;
        }
        self.cv.wait_for(&mut gen, timeout);
        *gen != token
    }

    /// Blocks until the mailbox changes or `timeout` elapses. Activity
    /// arriving between the caller's last queue scan and this call is
    /// *not* detected (take a token first for that — see
    /// [`Mailbox::activity_token`]); use only for idle naps where an
    /// extra `timeout` of latency is acceptable.
    pub fn wait_activity(&self, timeout: Duration) {
        let token = self.activity_token();
        self.wait_activity_since(token, timeout);
    }

    /// Number of queued (unmatched) messages.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes and returns **all** queued messages. Used by the checkpoint
    /// engine at a safe state: anything still unmatched is an in-flight
    /// message that must be saved in the image and re-deposited at restart.
    pub fn drain_all(&self) -> Vec<InFlightMsg> {
        std::mem::take(&mut *self.inner.lock())
    }

    /// Clones **all** queued messages without removing them (checkpoint
    /// *continue* path).
    pub fn snapshot_all(&self) -> Vec<InFlightMsg> {
        self.inner.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use netmodel::VTime;

    fn msg(src: usize, comm: u64, tag: u32, seq: u64) -> InFlightMsg {
        InFlightMsg {
            src_world: src,
            dst_world: 0,
            comm: CommId(comm),
            tag,
            payload: Bytes::from(vec![seq as u8]),
            sent: VTime::ZERO,
            arrival: VTime::from_micros(seq as f64),
            seq,
        }
    }

    fn spec(group: &Group, comm: u64, src: SrcSel, tag: TagSel) -> MatchSpec<'_> {
        MatchSpec {
            comm: CommId(comm),
            group,
            src,
            tag,
        }
    }

    #[test]
    fn fifo_per_sender_and_tag() {
        let g = Group::world(4);
        let mb = Mailbox::new();
        mb.deposit(msg(1, 0, 7, 0));
        mb.deposit(msg(1, 0, 7, 1));
        let s = spec(&g, 0, SrcSel::Rank(1), TagSel::Tag(7));
        assert_eq!(mb.take_match(&s).unwrap().seq, 0);
        assert_eq!(mb.take_match(&s).unwrap().seq, 1);
        assert!(mb.take_match(&s).is_none());
    }

    #[test]
    fn wildcard_source_takes_earliest_deposit() {
        let g = Group::world(4);
        let mb = Mailbox::new();
        mb.deposit(msg(2, 0, 7, 10));
        mb.deposit(msg(1, 0, 7, 11));
        let s = spec(&g, 0, SrcSel::Any, TagSel::Tag(7));
        assert_eq!(mb.take_match(&s).unwrap().src_world, 2);
    }

    #[test]
    fn tag_and_comm_filtering() {
        let g = Group::world(4);
        let mb = Mailbox::new();
        mb.deposit(msg(1, 0, 7, 0));
        mb.deposit(msg(1, 1, 8, 1));
        // Wrong tag: no match.
        assert!(mb
            .take_match(&spec(&g, 0, SrcSel::Any, TagSel::Tag(9)))
            .is_none());
        // Wrong comm: no match.
        assert!(mb
            .take_match(&spec(&g, 2, SrcSel::Any, TagSel::Any))
            .is_none());
        // Comm 1, any tag: the tag-8 message.
        assert_eq!(
            mb.take_match(&spec(&g, 1, SrcSel::Any, TagSel::Any))
                .unwrap()
                .tag,
            8
        );
    }

    #[test]
    fn sender_outside_group_never_matches() {
        // A message from world rank 3 on a comm whose group is {0,1}:
        // matching must skip it even under ANY_SOURCE (different comm ids
        // prevent this in practice, but the matcher must be robust).
        let g = Group::new(vec![0, 1]);
        let mb = Mailbox::new();
        mb.deposit(msg(3, 0, 7, 0));
        assert!(mb
            .take_match(&spec(&g, 0, SrcSel::Any, TagSel::Any))
            .is_none());
    }

    #[test]
    fn peek_does_not_remove() {
        let g = Group::world(2);
        let mb = Mailbox::new();
        mb.deposit(msg(1, 0, 3, 5));
        let s = spec(&g, 0, SrcSel::Any, TagSel::Any);
        let (src, tag, len, _) = mb.peek_match(&s).unwrap();
        assert_eq!((src, tag, len), (1, 3, 1));
        assert_eq!(mb.len(), 1);
        assert!(mb.take_match(&s).is_some());
        assert!(mb.is_empty());
    }

    #[test]
    fn drain_all_empties() {
        let g = Group::world(2);
        let mb = Mailbox::new();
        mb.deposit(msg(1, 0, 1, 0));
        mb.deposit(msg(1, 0, 2, 1));
        let drained = mb.drain_all();
        assert_eq!(drained.len(), 2);
        assert!(mb.is_empty());
        let _ = g;
    }

    #[test]
    fn wait_since_token_sees_raced_deposit() {
        // A deposit landing between the token snapshot and the wait must
        // make the wait return immediately, not after the timeout.
        let mb = Mailbox::new();
        let token = mb.activity_token();
        mb.deposit(msg(1, 0, 1, 0));
        let t = std::time::Instant::now();
        mb.wait_activity_since(token, Duration::from_secs(5));
        assert!(
            t.elapsed() < Duration::from_secs(1),
            "raced deposit must not cost the timeout"
        );
    }

    #[test]
    fn wait_activity_wakes_on_deposit() {
        use std::sync::Arc;
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || {
            mb2.wait_activity(Duration::from_secs(5));
        });
        std::thread::sleep(Duration::from_millis(20));
        mb.deposit(msg(1, 0, 1, 0));
        t.join().unwrap(); // returns promptly, not after 5s
    }
}
