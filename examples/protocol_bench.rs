//! The protocol-comparison bench (the paper's Figure 5a): CC vs. MANA's
//! 2PC trivial-barrier baseline on SCF, halo-exchange, and
//! broadcast-pipeline workloads across {2,4,8} ranks, with OS jitter on
//! and off, one checkpoint-and-continue per protocol run. Writes
//! `BENCH_protocols.json` into the current directory.
//!
//! ```sh
//! cargo run --release --example protocol_bench            # full matrix
//! PROTO_BENCH_ITERS=40 cargo run --release --example protocol_bench  # CI
//! ```

use bench::{figure5a_matrix, records_to_json, BenchConfig};

fn main() {
    let iters = std::env::var("PROTO_BENCH_ITERS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(120);
    let cfg = BenchConfig {
        iters,
        ..BenchConfig::default()
    };
    let records = figure5a_matrix(&cfg);

    println!(
        "{:<16} {:>5} {:>6} {:>4} {:>14} {:>14} {:>10} {:>12}",
        "workload", "ranks", "proto", "jit", "native(ms)", "run(ms)", "ovh(%)", "drain(us)"
    );
    for r in &records {
        let drain_us: Vec<String> = r
            .drain_latency_s
            .iter()
            .map(|d| format!("{:.1}", d * 1e6))
            .collect();
        println!(
            "{:<16} {:>5} {:>6} {:>4} {:>14.3} {:>14.3} {:>10.2} {:>12}",
            r.workload,
            r.ranks,
            r.protocol,
            if r.jitter { "on" } else { "off" },
            r.native_makespan_s * 1e3,
            r.makespan_s * 1e3,
            r.overhead_pct,
            drain_us.join("/"),
        );
    }

    // The Figure 5a shape, asserted so CI catches a regression in the
    // comparison itself: at the largest world with jitter on, 2PC's
    // overhead must exceed CC's on every workload, and the gap must be
    // widest on the non-synchronizing broadcast pipeline.
    let max_ranks = cfg.ranks.iter().copied().max().unwrap();
    let overhead = |wl: &str, proto: &str, jitter: bool| -> f64 {
        records
            .iter()
            .find(|r| {
                r.workload == wl
                    && r.protocol == proto
                    && r.jitter == jitter
                    && r.ranks == max_ranks
            })
            .map(|r| r.overhead_pct)
            .expect("matrix cell present")
    };
    for wl in ["scf", "halo", "bcast_pipeline"] {
        let cc = overhead(wl, "CC", true);
        let tp = overhead(wl, "2PC", true);
        assert!(
            tp > cc,
            "Figure 5a shape violated: {wl}: 2PC {tp:.2}% <= CC {cc:.2}%"
        );
        println!("{wl}: 2PC {tp:.2}% vs CC {cc:.2}% at {max_ranks} ranks (jitter on)");
    }

    let json = records_to_json(&records);
    std::fs::write("BENCH_protocols.json", &json).expect("write BENCH_protocols.json");
    println!(
        "wrote BENCH_protocols.json ({} records, {} bytes)",
        records.len(),
        json.len()
    );
}
