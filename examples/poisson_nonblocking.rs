//! A Poisson-style non-blocking halo exchange checkpointed mid-iteration
//! with the *continue* path (capture without restart), compared against an
//! uninterrupted run.
//!
//! ```sh
//! cargo run --release --example poisson_nonblocking
//! ```

use ckpt::{run_ckpt_world, CkptOptions, ResumeMode};
use mpisim::{NetParams, VTime, WorldConfig};
use workloads::halo_exchange;

fn main() {
    let cfg = WorldConfig::single_node(4).with_params(NetParams::slingshot11().without_jitter());
    let iters = 200;
    let cells = 16;

    let native = run_ckpt_world(cfg.clone(), CkptOptions::native(), |r| {
        halo_exchange(r, iters, cells)
    });
    let at = VTime::from_secs(native.makespan.as_secs() * 0.5);
    let run = run_ckpt_world(
        cfg,
        CkptOptions::one_checkpoint(at, ResumeMode::Continue),
        |r| halo_exchange(r, iters, cells),
    );

    println!("== poisson_nonblocking: halo exchange with mid-flight checkpoint ==");
    println!(
        "native makespan {}   ckpt makespan {}",
        native.makespan, run.makespan
    );
    for (a, b) in native.ranks.iter().zip(&run.ranks) {
        println!(
            "rank {}: native {:>14.6}  ckpt {:>14.6}  {}",
            a.rank,
            a.result,
            b.result,
            if a.result == b.result {
                "identical"
            } else {
                "DIVERGED"
            }
        );
        assert_eq!(a.result, b.result, "continuation diverged");
    }
    match run.checkpoints.first() {
        Some(ckpt) => {
            ckpt.verify().expect("safe-cut oracle");
            println!(
                "checkpoint fired at {} with {} in-flight msgs — safe cut OK",
                ckpt.capture_clock(),
                ckpt.in_flight.len()
            );
        }
        None => println!("checkpoint did not fire (workload outran the trigger)"),
    }
}
