//! A VASP-like SCF loop (dense allreduces between compute phases)
//! checkpointed with a full restart into a fresh lower half; the converged
//! energy must match an uninterrupted run exactly.
//!
//! ```sh
//! cargo run --release --example vasp_scf
//! ```

use ckpt::{run_ckpt_world, CkptOptions, ResumeMode};
use mpisim::{NetParams, VTime, WorldConfig};
use workloads::scf_loop;

fn main() {
    let cfg = WorldConfig::single_node(8).with_params(NetParams::slingshot11().without_jitter());
    let iters = 150;
    let elems = 32;

    let native = run_ckpt_world(cfg.clone(), CkptOptions::native(), |r| {
        scf_loop(r, iters, elems)
    });
    let at = VTime::from_secs(native.makespan.as_secs() * 0.5);
    let run = run_ckpt_world(
        cfg,
        CkptOptions::one_checkpoint(at, ResumeMode::Restart),
        |r| scf_loop(r, iters, elems),
    );

    println!("== vasp_scf: SCF loop with mid-flight checkpoint + restart ==");
    println!(
        "native makespan {}   ckpt makespan {}",
        native.makespan, run.makespan
    );
    let e_native = native.ranks[0].result;
    let e_ckpt = run.ranks[0].result;
    println!("final energy: native {e_native:.12}  restarted {e_ckpt:.12}");
    assert_eq!(e_native, e_ckpt, "restart changed the converged energy");
    for r in &run.ranks {
        assert_eq!(r.result, e_ckpt, "ranks disagree on the energy");
    }
    match run.checkpoints.first() {
        Some(ckpt) => {
            ckpt.verify().expect("safe-cut oracle");
            println!(
                "checkpoint fired at {} (epoch {} -> restart) — safe cut OK",
                ckpt.capture_clock(),
                ckpt.epoch
            );
        }
        None => println!("checkpoint did not fire (workload outran the trigger)"),
    }
}
