//! The Figure 9 bench: checkpoint/restart image I/O vs. node count through
//! the Lustre model (1–16 nodes × three per-rank image sizes at 128 ranks
//! per node), plus real captured images serialized through the wire format
//! at small world sizes. Writes `BENCH_figure9.json` into the current
//! directory, next to the protocol bench's `BENCH_protocols.json`.
//!
//! ```sh
//! cargo run --release --example figure9_bench
//! ```

use bench::{figure9_report, figure9_to_json, Figure9Config};

fn main() {
    let cfg = Figure9Config::default();
    let report = figure9_report(&cfg);

    println!(
        "{:<6} {:>7} {:>16} {:>12} {:>12}",
        "nodes", "ranks", "img/rank(MiB)", "write(s)", "read(s)"
    );
    for p in &report.model {
        println!(
            "{:<6} {:>7} {:>16.0} {:>12.2} {:>12.2}",
            p.nodes,
            p.ranks,
            p.image_bytes_per_rank as f64 / (1 << 20) as f64,
            p.write_s,
            p.read_s,
        );
    }
    println!();
    println!(
        "{:<6} {:>18} {:>16} {:>12}",
        "ranks", "image bytes", "in-flight B", "cut events"
    );
    for m in &report.measured {
        println!(
            "{:<6} {:>18} {:>16} {:>12}",
            m.ranks, m.serialized_bytes, m.in_flight_bytes, m.cut_events
        );
    }

    // The Figure 9 shape, asserted so CI catches a regression: for the
    // paper's 398 MB image, checkpoint time never improves with node
    // count (injection-limited and flat at first) and climbs over the
    // full 1→16 sweep once the job-visible aggregate bandwidth binds.
    let vasp: Vec<f64> = report
        .model
        .iter()
        .filter(|p| p.image_bytes_per_rank == 398 * 1024 * 1024)
        .map(|p| p.write_s)
        .collect();
    assert!(
        vasp.windows(2).all(|w| w[0] <= w[1]) && vasp.last().unwrap() > vasp.first().unwrap(),
        "Figure 9 shape violated: write times over node count: {vasp:?}"
    );
    assert!(
        !report.measured.is_empty(),
        "no measured image was captured"
    );

    let json = figure9_to_json(&report);
    std::fs::write("BENCH_figure9.json", &json).expect("write BENCH_figure9.json");
    println!(
        "\nwrote BENCH_figure9.json ({} model cells, {} measured images, {} bytes)",
        report.model.len(),
        report.measured.len(),
        json.len()
    );
}
