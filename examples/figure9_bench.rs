//! The Figure 9 bench: checkpoint/restart image I/O vs. node count through
//! the Lustre model (1–16 nodes × three per-rank image sizes at 128 ranks
//! per node), plus real captured images serialized through the wire format
//! at small world sizes, plus the capture-pipeline sweep (`capture_wall_s`:
//! parallel zero-copy encode wall time over synthetic images at 512–4096
//! ranks, asserted flat per rank). Writes `BENCH_figure9.json` into the
//! current directory, next to the protocol bench's `BENCH_protocols.json`.
//!
//! ```sh
//! cargo run --release --example figure9_bench
//! ```

use bench::{figure9_report, figure9_to_json, Figure9Config};

fn main() {
    let cfg = Figure9Config::default();
    let report = figure9_report(&cfg);

    println!(
        "{:<6} {:>7} {:>16} {:>12} {:>12}",
        "nodes", "ranks", "img/rank(MiB)", "write(s)", "read(s)"
    );
    for p in &report.model {
        println!(
            "{:<6} {:>7} {:>16.0} {:>12.2} {:>12.2}",
            p.nodes,
            p.ranks,
            p.image_bytes_per_rank as f64 / (1 << 20) as f64,
            p.write_s,
            p.read_s,
        );
    }
    println!();
    println!(
        "{:<6} {:>18} {:>16} {:>12} {:>16}",
        "ranks", "image bytes", "in-flight B", "cut events", "capture wall(s)"
    );
    for m in &report.measured {
        println!(
            "{:<6} {:>18} {:>16} {:>12} {:>16.6}",
            m.ranks, m.serialized_bytes, m.in_flight_bytes, m.cut_events, m.capture_wall_s
        );
    }
    println!();
    println!(
        "{:<6} {:>8} {:>14} {:>18} {:>20}",
        "ranks", "workers", "image bytes", "capture wall(s)", "per-rank wall(us)"
    );
    for p in &report.capture {
        println!(
            "{:<6} {:>8} {:>14} {:>18.6} {:>20.3}",
            p.ranks,
            p.workers,
            p.serialized_bytes,
            p.capture_wall_s,
            p.per_rank_capture_wall_s() * 1e6,
        );
    }

    // The Figure 9 shape, asserted so CI catches a regression: for the
    // paper's 398 MB image, checkpoint time never improves with node
    // count (injection-limited and flat at first) and climbs over the
    // full 1→16 sweep once the job-visible aggregate bandwidth binds.
    let vasp: Vec<f64> = report
        .model
        .iter()
        .filter(|p| p.image_bytes_per_rank == 398 * 1024 * 1024)
        .map(|p| p.write_s)
        .collect();
    assert!(
        vasp.windows(2).all(|w| w[0] <= w[1]) && vasp.last().unwrap() > vasp.first().unwrap(),
        "Figure 9 shape violated: write times over node count: {vasp:?}"
    );
    assert!(
        !report.measured.is_empty(),
        "no measured image was captured"
    );
    // The capture-pipeline shape: per-rank encode wall time stays flat
    // (within 2×) from 512 to 4096 ranks — rank count must not buy the
    // parallel zero-copy encoder superlinear time.
    bench::assert_figure9_capture_shape(&report.capture);

    let json = figure9_to_json(&report);
    std::fs::write("BENCH_figure9.json", &json).expect("write BENCH_figure9.json");
    println!(
        "\nwrote BENCH_figure9.json ({} model cells, {} measured images, {} bytes)",
        report.model.len(),
        report.measured.len(),
        json.len()
    );
}
