//! The Figure 9 bench: checkpoint/restart image I/O vs. node count through
//! the Lustre model (1–16 nodes × three per-rank image sizes at 128 ranks
//! per node), plus real captured images serialized through the wire format
//! at small world sizes, plus the capture-pipeline sweep (`capture_wall_s`:
//! parallel zero-copy encode wall time over synthetic images at 512–4096
//! ranks, asserted flat per rank), plus the multi-level storage additions:
//! the tier × changed-ratio sweep (memory / partner / Lustre write and
//! read cost per cell, asserted strictly ordered), the measured
//! full-vs-delta cell at 4096 ranks (asserted ≥5× smaller with ~10% of
//! ranks changed), and the sync-vs-async drain comparison (asserted to
//! move the image write off the app-visible path). Writes
//! `BENCH_figure9.json` into the current directory, next to the protocol
//! bench's `BENCH_protocols.json`.
//!
//! ```sh
//! cargo run --release --example figure9_bench
//! ```

use bench::{figure9_report, figure9_to_json, Figure9Config};

fn main() {
    let cfg = Figure9Config::default();
    let report = figure9_report(&cfg);

    println!(
        "{:<6} {:>7} {:>16} {:>12} {:>12}",
        "nodes", "ranks", "img/rank(MiB)", "write(s)", "read(s)"
    );
    for p in &report.model {
        println!(
            "{:<6} {:>7} {:>16.0} {:>12.2} {:>12.2}",
            p.nodes,
            p.ranks,
            p.image_bytes_per_rank as f64 / (1 << 20) as f64,
            p.write_s,
            p.read_s,
        );
    }
    println!();
    println!(
        "{:<6} {:>18} {:>16} {:>12} {:>16}",
        "ranks", "image bytes", "in-flight B", "cut events", "capture wall(s)"
    );
    for m in &report.measured {
        println!(
            "{:<6} {:>18} {:>16} {:>12} {:>16.6}",
            m.ranks, m.serialized_bytes, m.in_flight_bytes, m.cut_events, m.capture_wall_s
        );
    }
    println!();
    println!(
        "{:<6} {:>8} {:>14} {:>18} {:>20}",
        "ranks", "workers", "image bytes", "capture wall(s)", "per-rank wall(us)"
    );
    for p in &report.capture {
        println!(
            "{:<6} {:>8} {:>14} {:>18.6} {:>20.3}",
            p.ranks,
            p.workers,
            p.serialized_bytes,
            p.capture_wall_s,
            p.per_rank_capture_wall_s() * 1e6,
        );
    }

    // The Figure 9 shape, asserted so CI catches a regression: for the
    // paper's 398 MB image, checkpoint time never improves with node
    // count (injection-limited and flat at first) and climbs over the
    // full 1→16 sweep once the job-visible aggregate bandwidth binds.
    let vasp: Vec<f64> = report
        .model
        .iter()
        .filter(|p| p.image_bytes_per_rank == 398 * 1024 * 1024)
        .map(|p| p.write_s)
        .collect();
    assert!(
        vasp.windows(2).all(|w| w[0] <= w[1]) && vasp.last().unwrap() > vasp.first().unwrap(),
        "Figure 9 shape violated: write times over node count: {vasp:?}"
    );
    assert!(
        !report.measured.is_empty(),
        "no measured image was captured"
    );
    // The capture-pipeline shape: per-rank encode wall time stays flat
    // (within 2×) from 512 to 4096 ranks — rank count must not buy the
    // parallel zero-copy encoder superlinear time.
    bench::assert_figure9_capture_shape(&report.capture);

    println!();
    println!(
        "{:<8} {:>8} {:>7} {:>16} {:>12} {:>12}",
        "tier", "ratio", "nodes", "total(GiB)", "write(s)", "read(s)"
    );
    for t in &report.tiers {
        println!(
            "{:<8} {:>8.2} {:>7} {:>16.1} {:>12.3} {:>12.3}",
            t.tier,
            t.changed_ratio,
            t.nodes,
            t.total_bytes as f64 / (1u64 << 30) as f64,
            t.write_s,
            t.read_s,
        );
    }
    // The storage-tier shape: every (ratio × nodes) cell must order the
    // partner replica strictly between node-local memory and Lustre.
    bench::assert_figure9_tier_order(&report.tiers);

    let delta = report.delta.as_ref().expect("delta cell enabled");
    println!();
    println!(
        "delta cell: {} ranks, {} changed -> full {} B, delta {} B ({:.1}x smaller, {} chunks)",
        delta.ranks,
        delta.changed_ranks,
        delta.full_bytes,
        delta.delta_bytes,
        delta.shrink_factor,
        delta.delta_chunks,
    );
    // The incremental-image shape: ≥5× smaller than the full parent at
    // 4096 ranks with <25% of ranks changed.
    bench::assert_figure9_delta_shape(delta);

    let drain = report.drain.as_ref().expect("drain comparison enabled");
    println!();
    println!(
        "drain: {} ckpts at {} ranks — makespan sync {:.4}s vs async {:.4}s, \
         blocking wall sync {:.6}s vs async {:.6}s",
        drain.checkpoints,
        drain.ranks,
        drain.sync_makespan_s,
        drain.async_makespan_s,
        drain.sync_blocking_wall_s,
        drain.async_blocking_wall_s,
    );
    for r in &drain.records {
        println!(
            "  gen {} [{}]: write {:.4}s, backpressure {:.4}s, \
             blocking {:.6}s, overlapped {:.6}s",
            r.generation,
            r.tier,
            r.modeled_write_s,
            r.backpressure_s,
            r.blocking_wall_s,
            r.overlapped_wall_s,
        );
    }
    // The async-drain shape: the write cost retires off the app-visible
    // blocking path.
    bench::assert_figure9_drain_shape(drain);

    let json = figure9_to_json(&report);
    std::fs::write("BENCH_figure9.json", &json).expect("write BENCH_figure9.json");
    println!(
        "\nwrote BENCH_figure9.json ({} model cells, {} measured images, {} tier cells, {} bytes)",
        report.model.len(),
        report.measured.len(),
        report.tiers.len(),
        json.len()
    );
}
