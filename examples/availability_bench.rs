//! The availability bench: MTBF × interval policy × protocol under fault
//! injection and supervised recovery. Each cell runs the SCF workload
//! under a deterministic seeded fault plan (rank and node deaths at
//! exponential virtual times), checkpoints into a rotating
//! memory/partner/Lustre tier schedule, and recovers through
//! [`ckpt::run_available_world`] until the workload completes —
//! reporting wasted work, makespan inflation, and recovery latency per
//! (MTBF row × {4× Daly, 2× Daly, Daly} ladder rung × {CC, 2PC}). The
//! shape is asserted before anything is written: a complete grid, one
//! recovery per fault, zero backstop expiries, and per-protocol mean
//! wasted work decreasing down the ladder toward the Daly optimum.
//! Writes `BENCH_availability.json` into the current directory.
//!
//! ```sh
//! cargo run --release --example availability_bench
//! ```

use bench::{
    assert_availability_shape, availability_report, availability_to_json, AvailabilityConfig,
};

fn main() {
    let cfg = AvailabilityConfig::default();
    let report = availability_report(&cfg);

    println!(
        "native makespan {:.6}s, mean write cost {:.6}s",
        report.native_makespan_s, report.write_cost_s
    );
    println!(
        "{:<5} {:>10} {:<11} {:>11} {:>7} {:>6} {:>10} {:>11} {:>11} {:>10}",
        "proto",
        "mtbf(s)",
        "policy",
        "interval(s)",
        "faults",
        "ckpts",
        "wasted(%)",
        "recovery(s)",
        "makespan(s)",
        "inflation"
    );
    for p in &report.points {
        println!(
            "{:<5} {:>10.6} {:<11} {:>11.6} {:>7} {:>6} {:>10.2} {:>11.6} {:>11.6} {:>10.4}",
            p.protocol,
            p.mtbf_s,
            p.policy,
            p.interval_s,
            p.faults,
            p.checkpoints,
            p.wasted_work_frac * 100.0,
            p.recovery_latency_s,
            p.makespan_s,
            p.makespan_inflation,
        );
    }

    assert_availability_shape(&report, cfg.mtbf_factors.len());
    let json = availability_to_json(&report);
    std::fs::write("BENCH_availability.json", &json).expect("write BENCH_availability.json");
    println!(
        "\nwrote BENCH_availability.json ({} points)",
        report.points.len()
    );
}
