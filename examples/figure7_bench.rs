//! The Figure 7 bench: CC drain latency vs. collective rate across
//! workloads and world sizes, under the batched cooperative scheduler.
//! Writes `BENCH_figure7.json` into the current directory, next to the
//! other bench artifacts; the step-representation sweeps (`huge`,
//! `ci-huge`) write `BENCH_figure7_huge.json` instead, so the huge-tier
//! artifact (with its per-rank memory column) never clobbers the
//! thread-tier one.
//!
//! ```sh
//! cargo run --release --example figure7_bench
//! # paper-scale sweep (64..512 ranks; release build strongly advised):
//! FIGURE7_SCALE=paper cargo run --release --example figure7_bench
//! # beyond-paper sweep (1024..4096 ranks; minutes of wall time):
//! FIGURE7_SCALE=xl cargo run --release --example figure7_bench
//! # step-object sweep past the thread ceiling (16384..65536 ranks):
//! FIGURE7_SCALE=huge cargo run --release --example figure7_bench
//! ```

use bench::{figure7_report, figure7_to_json, Figure7Config};

fn main() {
    let scale = std::env::var("FIGURE7_SCALE").unwrap_or_default();
    let cfg = match scale.as_str() {
        "paper" => Figure7Config::paper_scale(),
        "xl" => Figure7Config::xl_scale(),
        // CI's time-budgeted variant of the xl sweep: same schedule, top
        // size capped at 2048 (the 4096 cells run locally).
        "ci-xl" => {
            let mut c = Figure7Config::xl_scale();
            c.ranks.retain(|&n| n <= 2048);
            c
        }
        // The step-representation tier: rank bodies are heap objects, so
        // the sweep crosses the OS thread ceiling. `ci-huge` is CI's
        // budgeted slice (16384 only; 65536 runs locally).
        "huge" => Figure7Config::huge_scale(),
        "ci-huge" => {
            let mut c = Figure7Config::huge_scale();
            c.ranks.retain(|&n| n <= 16_384);
            c
        }
        _ => Figure7Config::default(),
    };
    let report = figure7_report(&cfg);

    println!(
        "{:<16} {:>6} {:>14} {:>12} {:>12} {:>12} {:>18} {:>12}",
        "workload",
        "ranks",
        "coll rate(Hz)",
        "p50(s)",
        "p90(s)",
        "p99(s)",
        "p99(intervals)",
        "mem(B/rank)"
    );
    for r in &report {
        println!(
            "{:<16} {:>6} {:>14.1} {:>12.4e} {:>12.4e} {:>12.4e} {:>18.2} {:>12}",
            r.workload,
            r.ranks,
            r.coll_rate_hz,
            r.latency_percentile_s(0.5),
            r.latency_percentile_s(0.9),
            r.latency_percentile_s(0.99),
            r.latency_percentile_intervals(0.99),
            r.rank_mem_bytes
                .map_or_else(|| "-".to_string(), |b| b.to_string()),
        );
    }

    // The Figure 7 shape, asserted so CI catches a regression: every cell
    // fired all its checkpoints with finite latency, and the CC drain
    // stays bounded as worlds grow — the largest world's worst drain is
    // within a small factor of the smallest world's worst drain measured
    // in collective intervals.
    bench::figure7::assert_figure7_shape(&report, cfg.checkpoints);

    let out = if cfg.step_bodies {
        "BENCH_figure7_huge.json"
    } else {
        "BENCH_figure7.json"
    };
    let json = figure7_to_json(&report);
    std::fs::write(out, &json).expect("write figure7 bench json");
    println!(
        "\nwrote {out} ({} cells, {} bytes)",
        report.len(),
        json.len()
    );
}
