//! The Figure 7 bench: CC drain latency vs. collective rate across
//! workloads and world sizes, under the batched cooperative scheduler.
//! Writes `BENCH_figure7.json` into the current directory, next to the
//! other bench artifacts.
//!
//! ```sh
//! cargo run --release --example figure7_bench
//! # paper-scale sweep (64..512 ranks; release build strongly advised):
//! FIGURE7_SCALE=paper cargo run --release --example figure7_bench
//! # beyond-paper sweep (1024..4096 ranks; minutes of wall time):
//! FIGURE7_SCALE=xl cargo run --release --example figure7_bench
//! ```

use bench::{figure7_report, figure7_to_json, Figure7Config};

fn main() {
    let cfg = match std::env::var("FIGURE7_SCALE").as_deref() {
        Ok("paper") => Figure7Config::paper_scale(),
        Ok("xl") => Figure7Config::xl_scale(),
        // CI's time-budgeted variant of the xl sweep: same schedule, top
        // size capped at 2048 (the 4096 cells run locally).
        Ok("ci-xl") => {
            let mut c = Figure7Config::xl_scale();
            c.ranks.retain(|&n| n <= 2048);
            c
        }
        _ => Figure7Config::default(),
    };
    let report = figure7_report(&cfg);

    println!(
        "{:<16} {:>6} {:>14} {:>12} {:>12} {:>12} {:>18}",
        "workload", "ranks", "coll rate(Hz)", "p50(s)", "p90(s)", "p99(s)", "p99(intervals)"
    );
    for r in &report {
        println!(
            "{:<16} {:>6} {:>14.1} {:>12.4e} {:>12.4e} {:>12.4e} {:>18.2}",
            r.workload,
            r.ranks,
            r.coll_rate_hz,
            r.latency_percentile_s(0.5),
            r.latency_percentile_s(0.9),
            r.latency_percentile_s(0.99),
            r.latency_percentile_intervals(0.99),
        );
    }

    // The Figure 7 shape, asserted so CI catches a regression: every cell
    // fired all its checkpoints with finite latency, and the CC drain
    // stays bounded as worlds grow — the largest world's worst drain is
    // within a small factor of the smallest world's worst drain measured
    // in collective intervals.
    bench::figure7::assert_figure7_shape(&report, cfg.checkpoints);

    let json = figure7_to_json(&report);
    std::fs::write("BENCH_figure7.json", &json).expect("write BENCH_figure7.json");
    println!(
        "\nwrote BENCH_figure7.json ({} cells, {} bytes)",
        report.len(),
        json.len()
    );
}
