//! The Figure 7 bench: CC drain latency vs. collective rate across
//! workloads and world sizes, under the batched cooperative scheduler.
//! Writes `BENCH_figure7.json` into the current directory, next to the
//! other bench artifacts.
//!
//! ```sh
//! cargo run --release --example figure7_bench
//! # paper-scale sweep (64..512 ranks; release build strongly advised):
//! FIGURE7_SCALE=paper cargo run --release --example figure7_bench
//! ```

use bench::{figure7_report, figure7_to_json, Figure7Config};

fn main() {
    let cfg = match std::env::var("FIGURE7_SCALE").as_deref() {
        Ok("paper") => Figure7Config::paper_scale(),
        _ => Figure7Config::default(),
    };
    let report = figure7_report(&cfg);

    println!(
        "{:<16} {:>6} {:>14} {:>16} {:>22}",
        "workload", "ranks", "coll rate(Hz)", "max drain(s)", "max drain(intervals)"
    );
    for r in &report {
        println!(
            "{:<16} {:>6} {:>14.1} {:>16.4e} {:>22.2}",
            r.workload,
            r.ranks,
            r.coll_rate_hz,
            r.max_latency_s(),
            r.max_latency_intervals(),
        );
    }

    // The Figure 7 shape, asserted so CI catches a regression: every cell
    // fired all its checkpoints with finite latency, and the CC drain
    // stays bounded as worlds grow — the largest world's worst drain is
    // within a small factor of the smallest world's worst drain measured
    // in collective intervals.
    bench::figure7::assert_figure7_shape(&report, cfg.checkpoints);

    let json = figure7_to_json(&report);
    std::fs::write("BENCH_figure7.json", &json).expect("write BENCH_figure7.json");
    println!(
        "\nwrote BENCH_figure7.json ({} cells, {} bytes)",
        report.len(),
        json.len()
    );
}
