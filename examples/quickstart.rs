//! Quickstart: run a 4-rank random MPI workload, checkpoint it mid-flight
//! with the CC drain, restart in-process, then round-trip the image
//! through serialized bytes and restore it into a fresh world — verifying
//! every continuation is bit-identical to an uninterrupted run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use workloads::quickstart;

fn main() {
    let out = quickstart(4, 2024, 40);
    let ckpt = &out.checkpoint;
    println!("== quickstart: checkpoint → image → restore → bit-identical continuation ==");
    println!(
        "native run:     makespan {}  results {:?}",
        out.native_makespan, out.native_results
    );
    println!(
        "ckpt+restart:   makespan {}  results {:?}",
        out.ckpt_makespan, out.ckpt_results
    );
    println!(
        "image restore:  makespan {}  results {:?}",
        out.restored_makespan, out.restored_results
    );
    println!(
        "checkpoint:     epoch {} captured at {} | {} groups targeted, {} raises folded",
        ckpt.epoch,
        ckpt.capture_clock(),
        ckpt.initial_targets.len(),
        ckpt.final_targets.len() - ckpt.initial_targets.len()
    );
    println!(
        "                {} in-flight msgs ({} B) drained, {} cut events verified",
        ckpt.in_flight.len(),
        ckpt.in_flight_bytes(),
        ckpt.cut_events.len()
    );
    println!(
        "image:          {} B serialized (versioned header + FNV-1a checksum)",
        out.image_bytes
    );
    println!(
        "safe cut:       {}",
        if ckpt.verify().is_ok() {
            "OK"
        } else {
            "VIOLATED"
        }
    );
    assert!(out.bit_identical(), "a continuation diverged");
    println!("bit-identical:  OK (in-process restart AND restore-from-image)");
}
