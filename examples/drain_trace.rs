//! Narrates a checkpoint drain: runs a small skewed workload, checkpoints
//! it, and prints the observable protocol steps (target installation,
//! drain steps, parks, quiesce, commit, resume).
//!
//! ```sh
//! cargo run --release --example drain_trace
//! ```

use ckpt::{run_ckpt_world, CkptOptions, ResumeMode};
use mana_core::DrainEvent;
use mpisim::{NetParams, VTime, WorldConfig};
use workloads::{random_workload, RandomWorkloadCfg};

fn main() {
    let cfg = WorldConfig::single_node(4).with_params(NetParams::slingshot11().without_jitter());
    let wl = RandomWorkloadCfg::new(7, 30).with_pace_us(40);
    let native = run_ckpt_world(cfg.clone(), CkptOptions::native(), |r| {
        random_workload(&wl, r)
    });
    let at = VTime::from_secs(native.makespan.as_secs() * 0.4);
    let run = run_ckpt_world(
        cfg,
        CkptOptions::one_checkpoint(at, ResumeMode::Continue),
        |r| random_workload(&wl, r),
    );

    println!("== drain trace (checkpoint requested at {at}) ==");
    for e in run.trace.events() {
        match e {
            DrainEvent::Requested => println!("* coordinator: checkpoint requested"),
            DrainEvent::TargetsInstalled(r, t) => {
                println!("  rank {r}: targets installed: {t:?}")
            }
            DrainEvent::TargetRaised(r, g, t) => {
                println!("  rank {r}: OVERSHOOT — raised TARGET[{g}] to {t}")
            }
            DrainEvent::UpdateSent(f, t, g, v) => {
                println!("  rank {f} -> rank {t}: raise TARGET[{g}] to {v}")
            }
            DrainEvent::UpdateReceived(r, g, v, ch) => {
                println!("  rank {r}: applied TARGET[{g}]={v} (changed: {ch})")
            }
            DrainEvent::DrainStep(r, g, s) => println!("  rank {r}: drain step {g}#{s}"),
            DrainEvent::Parked(r) => println!("  rank {r}: parked at wrapper entry"),
            DrainEvent::Unparked(r) => println!("  rank {r}: released (target raised)"),
            DrainEvent::Quiesced(r) => println!("  rank {r}: quiesced for capture"),
            DrainEvent::TrivialBarrierParked(r) => {
                println!("  rank {r}: parked in a 2PC trivial barrier")
            }
            DrainEvent::Committed => println!("* coordinator: image committed"),
            DrainEvent::Resumed => println!("* coordinator: ranks resumed"),
            DrainEvent::Aborted => println!("* coordinator: checkpoint aborted (drain stall)"),
        }
    }
    for ckpt in &run.checkpoints {
        println!(
            "checkpoint at epoch {}: {} cut events, safe cut: {}",
            ckpt.epoch,
            ckpt.cut_events.len(),
            if ckpt.verify().is_ok() {
                "OK"
            } else {
                "VIOLATED"
            }
        );
    }
}
