fn main() {}
